//! The Time-Series Latency Probes driver (§3.1).
//!
//! For each inferred interdomain link, the prober holds up to three
//! destinations such that both the near and far end of the link sit on the
//! forward path toward them, preferring destinations inside the neighbor's
//! address space. Every five minutes it sends TTL-limited probes that expire
//! at the near and far interfaces, keeping the flow identifier constant per
//! link so ECMP keeps the forward path pinned. Destinations are only
//! replaced when they lose visibility of the link (§3.1's probing-state
//! stability rule).

use crate::path::{probe_path, ProbePath, VpHandle};
use crate::scheduler::RateBudget;
use crate::traceroute::Traceroute;
use manic_netsim::noise;
use manic_netsim::time::SimTime;
use manic_netsim::{Ipv4, Network, ProbeSpec, ProbeStatus, SimState};
use manic_tsdb::{SeriesKey, Store, TagSet};

/// Which end of the link a sample measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum End {
    Near,
    Far,
}

impl End {
    pub fn tag(self) -> &'static str {
        match self {
            End::Near => "near",
            End::Far => "far",
        }
    }

    /// Index into per-task `[near, far]` pairs (the cached key array).
    pub fn index(self) -> usize {
        matches!(self, End::Far) as usize
    }
}

/// A destination used to probe one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TslpDest {
    pub dst: Ipv4,
    /// TTL that expires at the near interface on the path to `dst`.
    pub near_ttl: u8,
    /// TTL that expires at the far interface (== near_ttl + 1 in practice).
    pub far_ttl: u8,
}

/// Probing state for one interdomain link.
#[derive(Debug, Clone)]
pub struct TslpTask {
    /// The near-end target (host network border router interface).
    pub near_ip: Ipv4,
    /// The far-end target (neighbor border interface on the link).
    pub far_ip: Ipv4,
    /// Up to three destinations behind the link.
    pub dests: Vec<TslpDest>,
    /// Constant flow identifier (the ICMP checksum TSLP holds fixed).
    pub flow_id: u16,
}

impl TslpTask {
    /// Stable series label for the link; the paper labels links by far IP.
    pub fn link_label(&self) -> String {
        self.far_ip.to_string()
    }
}

/// One measurement produced by a probing round.
#[derive(Debug, Clone, Copy)]
pub struct TslpSample {
    pub t: SimTime,
    pub end: End,
    /// RTT if a response arrived from the *expected* interface.
    pub rtt_ms: Option<f64>,
    /// True when a response arrived but from an unexpected address —
    /// evidence the route no longer crosses the link (visibility loss).
    pub mismatched: bool,
}

/// Per-VP TSLP driver.
pub struct TslpProber {
    pub vp: VpHandle,
    pub tasks: Vec<TslpTask>,
    /// Cached `[near, far]` tsdb keys per task, rebuilt whenever the task
    /// set changes — the round hot path must not re-format key strings.
    keys: Vec<[SeriesKey; 2]>,
    budget: RateBudget,
    metrics: crate::obs::VpTslpMetrics,
}

/// Probing interval (§3.1: every five minutes).
pub const ROUND_SECS: i64 = 300;
/// TSLP probing budget per VP (§3.1: 100 packets per second).
pub const TSLP_PPS: f64 = 100.0;
/// Per-probe timeout: a reply slower than this is treated as loss (scamper's
/// default wait). Guards against pathological simulated paths (heavy clock
/// skew, saturated reply queues) poisoning min-RTT series.
pub const PROBE_TIMEOUT_MS: f64 = 3_000.0;

impl TslpProber {
    pub fn new(vp: VpHandle, start: SimTime) -> Self {
        let metrics = crate::obs::VpTslpMetrics::for_vp(&vp.name);
        TslpProber {
            vp,
            tasks: Vec::new(),
            keys: Vec::new(),
            budget: RateBudget::new(TSLP_PPS, start),
            metrics,
        }
    }

    /// Replace the task set wholesale (checkpoint restore), rebuilding the
    /// cached series keys.
    pub fn set_tasks(&mut self, tasks: Vec<TslpTask>) {
        self.tasks = tasks;
        self.rebuild_keys();
    }

    /// The cached tsdb key for `(task, end)`. Valid as long as the task set
    /// was installed through [`Self::update_targets`]/[`Self::set_tasks`].
    pub fn key(&self, ti: usize, end: End) -> &SeriesKey {
        debug_assert_eq!(self.keys.len(), self.tasks.len(), "stale key cache");
        &self.keys[ti][end.index()]
    }

    fn rebuild_keys(&mut self) {
        let vp = &self.vp.name;
        self.keys = self
            .tasks
            .iter()
            .map(|t| [series_key(vp, t, End::Near), series_key(vp, t, End::Far)])
            .collect();
    }

    /// Install/update the probing set from fresh link→destination candidates
    /// (the output of a bdrmap cycle). Existing destinations are kept while
    /// they remain candidates; lost ones are replaced (§3.1).
    pub fn update_targets(&mut self, candidates: Vec<TslpTask>) {
        let mut next = Vec::with_capacity(candidates.len());
        for mut cand in candidates {
            if let Some(old) = self
                .tasks
                .iter()
                .find(|t| t.near_ip == cand.near_ip && t.far_ip == cand.far_ip)
            {
                // Keep surviving old destinations, in their old order.
                let mut kept: Vec<TslpDest> = old
                    .dests
                    .iter()
                    .filter(|d| cand.dests.iter().any(|c| c.dst == d.dst))
                    .cloned()
                    .collect();
                for c in &cand.dests {
                    if kept.len() >= 3 {
                        break;
                    }
                    if !kept.iter().any(|k| k.dst == c.dst) {
                        kept.push(*c);
                    }
                }
                cand.dests = kept;
                cand.flow_id = old.flow_id;
            }
            cand.dests.truncate(3);
            next.push(cand);
        }
        self.tasks = next;
        self.rebuild_keys();
    }

    /// Execute one five-minute probing round in packet mode, writing samples
    /// into `store` and returning them for probing-state bookkeeping.
    pub fn probe_round(
        &mut self,
        net: &Network,
        state: &mut SimState,
        round_start: SimTime,
        store: &Store,
    ) -> Vec<(usize, TslpSample)> {
        let out = self.probe_round_masked(net, state, round_start, |_| true);
        for &(ti, sample) in &out {
            if let Some(rtt) = sample.rtt_ms {
                store.write(self.key(ti, sample.end), sample.t, rtt);
            }
        }
        out
    }

    /// [`Self::probe_round`] restricted to tasks the health machine wants
    /// probed this round: `mask(ti)` decides per task index. Skipped tasks
    /// consume no probing budget and produce no samples — the caller is
    /// responsible for annotating the resulting gap in the tsdb. Samples are
    /// returned, not persisted: in the parallel engine the caller stages them
    /// and commits in VP order (see `manic-core`'s engine module).
    pub fn probe_round_masked(
        &mut self,
        net: &Network,
        state: &mut SimState,
        round_start: SimTime,
        mask: impl Fn(usize) -> bool,
    ) -> Vec<(usize, TslpSample)> {
        let m = &self.metrics;
        m.rounds.inc();
        // Per-probe counts accumulate in locals and flush once per round:
        // one atomic add per counter per round instead of one per probe
        // keeps the instrumented hot path within the <5% overhead budget
        // (see `bench/src/bin/obs_overhead.rs`).
        let (mut sent, mut answered, mut timed_out, mut mism, mut lost, mut skipped) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        let mut out = Vec::new();
        let budget = &mut self.budget;
        for (ti, task) in self.tasks.iter().enumerate() {
            if !mask(ti) {
                skipped += 1;
                continue;
            }
            for dest in &task.dests {
                for (end, ttl, expect) in [
                    (End::Near, dest.near_ttl, task.near_ip),
                    (End::Far, dest.far_ttl, task.far_ip),
                ] {
                    let t = budget.next_slot(round_start);
                    let status = net.send_probe(
                        state,
                        ProbeSpec {
                            src: self.vp.router,
                            src_addr: self.vp.addr,
                            dst: dest.dst,
                            ttl,
                            flow_id: task.flow_id,
                        },
                        t,
                    );
                    sent += 1;
                    let sample = match status {
                        ProbeStatus::TimeExceeded { from, rtt_ms }
                        | ProbeStatus::EchoReply { from, rtt_ms } => {
                            if rtt_ms > PROBE_TIMEOUT_MS {
                                // Reply arrived after the per-probe timeout:
                                // counted as loss, like a real prober would.
                                timed_out += 1;
                                TslpSample { t, end, rtt_ms: None, mismatched: false }
                            } else if from == expect {
                                answered += 1;
                                m.rtt_ms.observe(rtt_ms);
                                TslpSample { t, end, rtt_ms: Some(rtt_ms), mismatched: false }
                            } else {
                                mism += 1;
                                TslpSample { t, end, rtt_ms: None, mismatched: true }
                            }
                        }
                        _ => {
                            lost += 1;
                            TslpSample { t, end, rtt_ms: None, mismatched: false }
                        }
                    };
                    out.push((ti, sample));
                }
            }
        }
        m.probes_sent.add(sent);
        m.answered.add(answered);
        m.timed_out.add(timed_out);
        m.mismatched.add(mism);
        m.lost.add(lost);
        m.tasks_skipped.add(skipped);
        out
    }

    /// Fluid fast path: synthesize the dense min-per-bin series each end of
    /// each task would exhibit over `[from, to)`, without per-probe work.
    ///
    /// Paths are resolved once at `from` (the caller re-synthesizes per
    /// bdrmap cycle, mirroring the production probing-state update cadence).
    pub fn synthesize_window(
        &self,
        net: &Network,
        from: SimTime,
        to: SimTime,
        bin_secs: i64,
    ) -> Vec<TaskSeries> {
        self.tasks
            .iter()
            .map(|task| synthesize_task(net, &self.vp, task, from, to, bin_secs))
            .collect()
    }
}

/// Dense per-bin series for one task.
#[derive(Debug, Clone)]
pub struct TaskSeries {
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    pub link_label: String,
    pub from: SimTime,
    pub bin_secs: i64,
    pub near: Vec<Option<f64>>,
    pub far: Vec<Option<f64>>,
}

/// Synthesize one task's series (see [`TslpProber::synthesize_window`]).
pub fn synthesize_task(
    net: &Network,
    vp: &VpHandle,
    task: &TslpTask,
    from: SimTime,
    to: SimTime,
    bin_secs: i64,
) -> TaskSeries {
    assert!(bin_secs % ROUND_SECS == 0, "bin must be a multiple of the probing round");
    crate::obs::metrics().synth_tasks.inc();
    let probes_per_bin = (bin_secs / ROUND_SECS) as i32;
    // Resolve the path per destination and end, deduplicating identical
    // paths (the three destinations of a task normally share the TTL-limited
    // path prefix, so only the multiplicity differs).
    let mut paths: Vec<(End, ProbePath, i32)> = Vec::new();
    for dest in &task.dests {
        for (end, ttl, expect) in [
            (End::Near, dest.near_ttl, task.near_ip),
            (End::Far, dest.far_ttl, task.far_ip),
        ] {
            if let Some(pp) = probe_path(net, vp, dest.dst, ttl, task.flow_id, from) {
                if pp.responder_addr == expect {
                    if let Some(existing) = paths.iter_mut().find(|(e, p, _)| {
                        *e == end && p.forward == pp.forward && p.reply == pp.reply
                    }) {
                        existing.2 += 1;
                    } else {
                        paths.push((end, pp, 1));
                    }
                }
            }
        }
    }
    let nbins = ((to - from) + bin_secs - 1) / bin_secs;
    let mut near = vec![None; nbins as usize];
    let mut far = vec![None; nbins as usize];
    let vp_stream = noise::mix(vp.name.bytes().fold(0u64, |a, b| a.wrapping_mul(31) + b as u64));
    for b in 0..nbins {
        let t_mid = from + b * bin_secs + bin_secs / 2;
        for (end, out) in [(End::Near, &mut near), (End::Far, &mut far)] {
            let mut best: Option<f64> = None;
            let mut miss_prob = 1.0f64;
            let mut any_path = false;
            for (_, pp, mult) in paths.iter().filter(|(e, _, _)| *e == end) {
                any_path = true;
                let (rtt, p) = pp.rtt_and_prob(net, t_mid, 1.0 / ROUND_SECS as f64);
                miss_prob *= (1.0 - p).powi(probes_per_bin * mult);
                best = Some(best.map_or(rtt, |x: f64| x.min(rtt)));
            }
            if !any_path {
                continue;
            }
            // Did at least one probe in the bin get through?
            let stream = vp_stream
                ^ ((task.far_ip.0 as u64) << 8)
                ^ matches!(end, End::Far) as u64;
            if !noise::bernoulli(net.seed ^ 0x7515, stream, b as u64, miss_prob) {
                out[b as usize] = best;
            }
        }
    }
    TaskSeries {
        near_ip: task.near_ip,
        far_ip: task.far_ip,
        link_label: task.link_label(),
        from,
        bin_secs,
        near,
        far,
    }
}

/// The tsdb series key for one (vp, link, end).
pub fn series_key(vp: &str, task: &TslpTask, end: End) -> SeriesKey {
    SeriesKey::new(
        "tslp",
        TagSet::from_pairs([
            ("vp", vp.to_string()),
            ("link", task.link_label()),
            ("end", end.tag().to_string()),
        ]),
    )
}

/// Build TSLP tasks from traceroutes, given the inferred interdomain links.
///
/// `links` are `(near_ip, far_ip)` pairs from border mapping;
/// `in_neighbor_space(dst, far_ip)` says whether a destination lies in the
/// link neighbor's address space (preferred, §3.1).
pub fn select_targets(
    traces: &[Traceroute],
    links: &[(Ipv4, Ipv4)],
    in_neighbor_space: impl Fn(Ipv4, Ipv4) -> bool,
) -> Vec<TslpTask> {
    let mut tasks = Vec::new();
    for &(near_ip, far_ip) in links {
        let mut preferred: Vec<TslpDest> = Vec::new();
        let mut fallback: Vec<TslpDest> = Vec::new();
        let mut flow_id = None;
        for tr in traces {
            let (Some(ni), Some(fi)) = (tr.hop_of(near_ip), tr.hop_of(far_ip)) else { continue };
            if fi != ni + 1 {
                continue;
            }
            let dest = TslpDest {
                dst: tr.dst,
                near_ttl: tr.hops[ni].ttl,
                far_ttl: tr.hops[fi].ttl,
            };
            flow_id.get_or_insert(tr.flow_id);
            if in_neighbor_space(tr.dst, far_ip) {
                preferred.push(dest);
            } else {
                fallback.push(dest);
            }
        }
        let mut dests = preferred;
        dests.extend(fallback);
        dests.dedup_by_key(|d| d.dst);
        dests.truncate(3);
        if dests.is_empty() {
            // The link stays unprobed this cycle — account for it instead of
            // dropping it silently.
            crate::obs::metrics().links_without_dests.inc();
        } else {
            tasks.push(TslpTask {
                near_ip,
                far_ip,
                dests,
                flow_id: flow_id.unwrap_or(((near_ip.0 ^ far_ip.0) & 0xFFFF) as u16),
            });
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ip: &str) -> Ipv4 {
        ip.parse().unwrap()
    }

    fn mk_trace(dst: &str, hops: &[&str]) -> Traceroute {
        Traceroute {
            vp: "vp".into(),
            dst: d(dst),
            flow_id: 7,
            t: 0,
            hops: hops
                .iter()
                .enumerate()
                .map(|(i, h)| crate::traceroute::TracerouteHop {
                    ttl: (i + 1) as u8,
                    addr: if h.is_empty() { None } else { Some(d(h)) },
                    rtt_ms: Some(1.0),
                })
                .collect(),
            reached: true,
        }
    }

    #[test]
    fn select_prefers_neighbor_space() {
        let near = "10.0.1.9";
        let far = "10.1.200.2";
        let traces = vec![
            mk_trace("10.9.0.1", &["10.0.0.1", near, far, "10.9.0.1"]), // not neighbor space
            mk_trace("10.1.64.1", &["10.0.0.1", near, far, "10.1.64.1"]), // neighbor space
        ];
        let tasks = select_targets(&traces, &[(d(near), d(far))], |dst, _| {
            dst.octets()[1] == 1
        });
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].dests[0].dst, d("10.1.64.1"), "neighbor-space dest first");
        assert_eq!(tasks[0].dests.len(), 2);
        assert_eq!(tasks[0].dests[0].near_ttl, 2);
        assert_eq!(tasks[0].dests[0].far_ttl, 3);
    }

    #[test]
    fn select_requires_adjacent_hops() {
        let traces = vec![mk_trace(
            "10.9.0.1",
            &["10.0.0.1", "10.0.1.9", "10.5.5.5", "10.1.200.2", "10.9.0.1"],
        )];
        let tasks =
            select_targets(&traces, &[(d("10.0.1.9"), d("10.1.200.2"))], |_, _| false);
        assert!(tasks.is_empty(), "non-adjacent near/far must not qualify");
    }

    #[test]
    fn select_caps_at_three() {
        let near = "10.0.1.9";
        let far = "10.1.200.2";
        let traces: Vec<Traceroute> = (0..6)
            .map(|i| mk_trace(&format!("10.1.64.{i}"), &["10.0.0.1", near, far, &format!("10.1.64.{i}")]))
            .collect();
        let tasks = select_targets(&traces, &[(d(near), d(far))], |_, _| true);
        assert_eq!(tasks[0].dests.len(), 3);
    }

    #[test]
    fn update_targets_keeps_stable_dests() {
        let vp = VpHandle { name: "vp".into(), router: manic_netsim::RouterId(0), addr: d("10.0.0.2") };
        let mut prober = TslpProber::new(vp, 0);
        let mk = |dsts: &[&str]| TslpTask {
            near_ip: d("10.0.1.9"),
            far_ip: d("10.1.200.2"),
            dests: dsts
                .iter()
                .map(|s| TslpDest { dst: d(s), near_ttl: 2, far_ttl: 3 })
                .collect(),
            flow_id: 7,
        };
        prober.update_targets(vec![mk(&["10.1.64.1", "10.1.64.2", "10.1.64.3"])]);
        // New cycle offers different candidates, with 64.2 still visible.
        prober.update_targets(vec![mk(&["10.1.64.9", "10.1.64.2", "10.1.64.8"])]);
        let dests: Vec<Ipv4> = prober.tasks[0].dests.iter().map(|d| d.dst).collect();
        // 64.2 survives (and stays ordered before the new ones it precedes).
        assert!(dests.contains(&d("10.1.64.2")));
        assert_eq!(dests.len(), 3);
        assert_eq!(prober.tasks[0].flow_id, 7, "flow id stable across cycles");
    }

    #[test]
    fn series_key_shape() {
        let task = TslpTask {
            near_ip: d("10.0.1.9"),
            far_ip: d("10.1.200.2"),
            dests: vec![],
            flow_id: 1,
        };
        let k = series_key("acme-nyc", &task, End::Far);
        assert_eq!(k.to_string(), "tslp,end=far,link=10.1.200.2,vp=acme-nyc");
    }
}
