//! Metric handles for the probing layer.
//!
//! TSLP stats are per vantage point (the paper reports per-VP probe budgets
//! and response rates), so [`VpTslpMetrics`] is created once per
//! [`crate::tslp::TslpProber`] and carries labeled handles; crate-global
//! counters live in the `OnceLock`'d [`Metrics`].

use manic_obs::{registry, Counter, Histogram};
use std::sync::OnceLock;

pub(crate) struct Metrics {
    /// Traceroutes executed (`traceroute::trace`).
    pub traceroutes: Counter,
    /// Links handed to `select_targets` that yielded no usable destination
    /// and were silently dropped from the probing set.
    pub links_without_dests: Counter,
    /// Tasks synthesized through the fluid fast path.
    pub synth_tasks: Counter,
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = registry();
        Metrics {
            traceroutes: r.counter("manic_probing_traceroutes"),
            links_without_dests: r.counter("manic_probing_links_without_dests"),
            synth_tasks: r.counter("manic_probing_synth_tasks"),
        }
    })
}

/// Per-VP TSLP counters, held by the prober for its lifetime.
pub(crate) struct VpTslpMetrics {
    pub rounds: Counter,
    pub probes_sent: Counter,
    /// Expected interface answered within the timeout.
    pub answered: Counter,
    /// Reply arrived after `PROBE_TIMEOUT_MS` (counted as loss by TSLP).
    pub timed_out: Counter,
    /// Reply from an unexpected address (visibility loss evidence).
    pub mismatched: Counter,
    /// No reply at all.
    pub lost: Counter,
    /// Tasks the health mask excluded from a round.
    pub tasks_skipped: Counter,
    /// Valid sample RTTs (ms).
    pub rtt_ms: Histogram,
}

impl VpTslpMetrics {
    pub fn for_vp(vp: &str) -> Self {
        let r = registry();
        let l = [("vp", vp)];
        VpTslpMetrics {
            rounds: r.counter_labeled("manic_probing_tslp_rounds", &l),
            probes_sent: r.counter_labeled("manic_probing_probes_sent", &l),
            answered: r.counter_labeled("manic_probing_probes_answered", &l),
            timed_out: r.counter_labeled("manic_probing_probes_timed_out", &l),
            mismatched: r.counter_labeled("manic_probing_probes_mismatched", &l),
            lost: r.counter_labeled("manic_probing_probes_lost", &l),
            tasks_skipped: r.counter_labeled("manic_probing_tasks_skipped", &l),
            rtt_ms: r.histogram_labeled("manic_probing_rtt_ms", &l),
        }
    }
}
