//! Measurement tools: the probing half of the paper's system (§3).
//!
//! Everything here observes the network only through
//! `manic_netsim::Network::send_probe` (plus the deterministic path walk for
//! the fluid fast path) — the same observables a scamper process on an Ark
//! node has:
//!
//! * [`traceroute`] — Paris-style traceroute: fixed flow identifier per
//!   trace so per-flow load balancers (ECMP) keep the path stable;
//! * [`tslp`] — the Time-Series Latency Probes driver (§3.1): for every
//!   inferred interdomain link, TTL-limited probes to the near and far
//!   router through up to three destinations, every five minutes, with a
//!   constant flow identifier;
//! * [`loss`] — the reactive high-frequency loss module (§3.3): 1-second
//!   TTL-limited probes to both ends of links under suspicion, within a
//!   150 pps budget;
//! * [`alias`] — Ally-style alias resolution on shared IP-ID counters,
//!   used by border mapping to group interfaces into routers;
//! * [`path`] — deterministic probe-path computation and the *fluid fast
//!   path*: per-bin synthesis of exactly the statistic the packet-mode
//!   prober would store (min-filtered RTT, per-window loss fraction), used
//!   by the 22-month longitudinal studies where simulating every probe
//!   packet would be waste;
//! * [`scheduler`] — pps budgeting shared by the drivers.

pub mod alias;
pub mod asymmetry;
pub mod loss;
pub(crate) mod obs;
pub mod path;
pub mod scheduler;
pub mod traceroute;
pub mod tslp;

pub use alias::{ally_test, icmp_ipid};
pub use asymmetry::{check_far_end, AsymmetryReport};
pub use loss::{LossProber, LossSample};
pub use path::{probe_path, ProbePath, VpHandle};
pub use scheduler::RateBudget;
pub use traceroute::{trace, Traceroute, TracerouteHop};
pub use tslp::{TslpDest, TslpProber, TslpSample, TslpTask};
