//! Alias resolution: grouping interface addresses into routers.
//!
//! bdrmap "performs alias resolution measurements on the set of discovered
//! interfaces (using Ally and Mercator)" (§3.2). We implement the Ally
//! technique [Spring et al., 2002]: many routers stamp outgoing packets from
//! a single shared IP-ID counter, so two addresses probed in quick
//! succession return *interleaved, monotonically increasing* IDs exactly
//! when they sit on the same router.
//!
//! The simulator does not carry an IP header, so the counter is modeled
//! here: a router's IP-ID at time `t` after `k` responses is a deterministic
//! function with a per-router phase and a slow drift — close-together
//! queries to one router give close IDs; different routers give unrelated
//! values. This reproduces the *measurement*, not the conclusion: the test
//! can still produce false negatives for unresponsive interfaces, exactly
//! like the real tool.

use crate::path::VpHandle;
use manic_netsim::noise;
use manic_netsim::time::SimTime;
use manic_netsim::{Ipv4, Network, ProbeSpec, ProbeStatus, SimState};

/// Modeled shared IP-ID counter of a router: per-router phase plus a drift
/// of ~7 IDs per second (a moderately busy router), plus the probe serial.
pub fn icmp_ipid(net: &Network, responder: manic_netsim::RouterId, t: SimTime, serial: u64) -> u16 {
    let phase = noise::mix(net.seed ^ 0x1D1D ^ responder.0 as u64) & 0xFFFF;
    (phase
        .wrapping_add((t as u64).wrapping_mul(7))
        .wrapping_add(serial)
        & 0xFFFF) as u16
}

/// Velocity-window acceptance for Ally: successive IDs from one counter
/// probed within a second should advance by less than this.
const ALLY_WINDOW: u16 = 220;

/// Run an Ally test between two interface addresses from `vp`.
///
/// Sends direct echoes A, B, A and checks the returned IP-IDs are mutually
/// in sequence. Returns `Some(true)` for aliases, `Some(false)` for
/// distinct counters, `None` when either address did not respond.
pub fn ally_test(
    net: &Network,
    state: &mut SimState,
    vp: &VpHandle,
    a: Ipv4,
    b: Ipv4,
    t: SimTime,
) -> Option<bool> {
    let mut ids = Vec::with_capacity(3);
    for (i, addr) in [a, b, a].into_iter().enumerate() {
        let status = net.send_probe(
            state,
            ProbeSpec { src: vp.router, src_addr: vp.addr, dst: addr, ttl: 64, flow_id: 0x411 },
            t,
        );
        let from = match status {
            ProbeStatus::EchoReply { from, .. } => from,
            _ => return None,
        };
        // The ID is stamped by whichever router owns the responding address.
        let responder = net.topo.iface_by_addr(from)?.router;
        ids.push(icmp_ipid(net, responder, t, i as u64));
    }
    let d1 = ids[1].wrapping_sub(ids[0]);
    let d2 = ids[2].wrapping_sub(ids[1]);
    Some(d1 > 0 && d1 < ALLY_WINDOW && d2 > 0 && d2 < ALLY_WINDOW)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_scenario::worlds::{toy, toy_asns};

    fn vp_of(w: &manic_scenario::World, name: &str) -> VpHandle {
        let vp = w.vp(name);
        VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
    }

    #[test]
    fn same_router_interfaces_are_aliases() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        // An ACME border router has an internal and an external interface.
        let gt = &w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let int_addr = gt.near_addr_from(toy_asns::ACME);
        let ext_addr = gt.far_addr_from(toy_asns::CDNCO); // == a_ext, ACME side
        let br = w.net.topo.iface_by_addr(ext_addr).unwrap().router;
        assert_eq!(w.net.topo.iface_by_addr(int_addr).unwrap().router, br);
        let mut st = SimState::new();
        let verdict = ally_test(&w.net, &mut st, &vp, int_addr, ext_addr, 1000);
        assert_eq!(verdict, Some(true));
    }

    #[test]
    fn different_routers_usually_not_aliases() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let links = w.links_of(toy_asns::ACME);
        // Compare internal interfaces of two different border routers.
        let mut addrs: Vec<Ipv4> = links
            .iter()
            .map(|g| g.near_addr_from(toy_asns::ACME))
            .collect();
        addrs.sort();
        addrs.dedup();
        assert!(addrs.len() >= 2);
        let mut st = SimState::new();
        let mut false_pos = 0;
        let mut tested = 0;
        for i in 0..addrs.len() {
            for j in (i + 1)..addrs.len() {
                if let Some(v) = ally_test(&w.net, &mut st, &vp, addrs[i], addrs[j], 500) {
                    tested += 1;
                    if v {
                        false_pos += 1;
                    }
                }
            }
        }
        assert!(tested > 0);
        // Random 16-bit phases land within the window only rarely.
        assert!(
            false_pos * 100 <= tested * 20,
            "{false_pos}/{tested} false positives"
        );
    }

    #[test]
    fn unresponsive_target_gives_none() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let mut st = SimState::new();
        let v = ally_test(&w.net, &mut st, &vp, "172.16.0.1".parse().unwrap(), vp.addr, 0);
        assert_eq!(v, None);
    }

    #[test]
    fn ipid_advances_with_time_and_serial() {
        let w = toy(1);
        let r = manic_netsim::RouterId(0);
        let a = icmp_ipid(&w.net, r, 100, 0);
        let b = icmp_ipid(&w.net, r, 100, 1);
        let c = icmp_ipid(&w.net, r, 101, 1);
        assert_eq!(b.wrapping_sub(a), 1);
        assert_eq!(c.wrapping_sub(b), 7);
    }
}
