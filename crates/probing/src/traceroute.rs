//! Paris-style traceroute.
//!
//! bdrmap's data collection is "an efficient variant of traceroute \[tracing\]
//! the path to every routed prefix observed in BGP" (§3.2). The key detail
//! for measurement validity is Paris traceroute's flow-id discipline
//! [Augustin et al., IMC 2006]: every probe of one trace carries the same
//! flow identifier so per-flow load balancers pin the path.

use crate::path::VpHandle;
use manic_netsim::time::SimTime;
use manic_netsim::{Ipv4, Network, ProbeSpec, ProbeStatus, SimState};

/// One traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracerouteHop {
    pub ttl: u8,
    /// `None` for an unresponsive hop (`*`).
    pub addr: Option<Ipv4>,
    pub rtt_ms: Option<f64>,
}

/// A completed traceroute.
#[derive(Debug, Clone)]
pub struct Traceroute {
    pub vp: String,
    pub dst: Ipv4,
    pub flow_id: u16,
    pub t: SimTime,
    pub hops: Vec<TracerouteHop>,
    /// True when the destination answered.
    pub reached: bool,
}

impl Traceroute {
    /// Hop index (0-based) whose address equals `addr`, if observed.
    pub fn hop_of(&self, addr: Ipv4) -> Option<usize> {
        self.hops.iter().position(|h| h.addr == Some(addr))
    }

    /// TTL at which `addr` responded.
    pub fn ttl_of(&self, addr: Ipv4) -> Option<u8> {
        self.hop_of(addr).map(|i| self.hops[i].ttl)
    }
}

/// Consecutive unresponsive hops after which the trace gives up
/// (scamper's gap limit).
const GAP_LIMIT: usize = 5;

/// Run one traceroute. `attempts` probes are sent per TTL before recording
/// an unresponsive hop.
#[allow(clippy::too_many_arguments)]
pub fn trace(
    net: &Network,
    state: &mut SimState,
    vp: &VpHandle,
    dst: Ipv4,
    flow_id: u16,
    t: SimTime,
    max_ttl: u8,
    attempts: u32,
) -> Traceroute {
    crate::obs::metrics().traceroutes.inc();
    let mut hops = Vec::new();
    let mut reached = false;
    let mut gap = 0usize;
    for ttl in 1..=max_ttl {
        let mut hop = TracerouteHop { ttl, addr: None, rtt_ms: None };
        for _ in 0..attempts.max(1) {
            let status = net.send_probe(
                state,
                ProbeSpec { src: vp.router, src_addr: vp.addr, dst, ttl, flow_id },
                t,
            );
            match status {
                ProbeStatus::EchoReply { from, rtt_ms } => {
                    hop.addr = Some(from);
                    hop.rtt_ms = Some(rtt_ms);
                    reached = true;
                    break;
                }
                ProbeStatus::TimeExceeded { from, rtt_ms } => {
                    hop.addr = Some(from);
                    hop.rtt_ms = Some(rtt_ms);
                    break;
                }
                ProbeStatus::Lost => continue,
                ProbeStatus::Unroutable => break,
            }
        }
        let responsive = hop.addr.is_some();
        hops.push(hop);
        if reached {
            break;
        }
        gap = if responsive { 0 } else { gap + 1 };
        if gap >= GAP_LIMIT {
            break;
        }
    }
    Traceroute { vp: vp.name.clone(), dst, flow_id, t, hops, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_scenario::worlds::{toy, toy_asns};

    fn vp_of(w: &manic_scenario::World, name: &str) -> VpHandle {
        let vp = w.vp(name);
        VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
    }

    #[test]
    fn trace_reaches_destination() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let mut st = SimState::new();
        let tr = trace(&w.net, &mut st, &vp, dst, 7, 0, 32, 3);
        assert!(tr.reached, "{tr:?}");
        assert_eq!(tr.hops.last().unwrap().addr, Some(dst));
        // RTTs are non-decreasing-ish: last hop beyond first.
        let first = tr.hops.first().unwrap().rtt_ms.unwrap();
        let last = tr.hops.last().unwrap().rtt_ms.unwrap();
        assert!(last > first);
    }

    #[test]
    fn trace_observes_border_addresses() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let mut st = SimState::new();
        let tr = trace(&w.net, &mut st, &vp, dst, 7, 0, 32, 3);
        let gt = &w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let near = gt.near_addr_from(toy_asns::ACME);
        let far = gt.far_addr_from(toy_asns::ACME);
        let ni = tr.hop_of(near).expect("near hop observed");
        let fi = tr.hop_of(far).expect("far hop observed");
        assert_eq!(fi, ni + 1, "far end immediately follows near end");
        assert_eq!(tr.ttl_of(far).unwrap(), tr.ttl_of(near).unwrap() + 1);
    }

    #[test]
    fn same_flow_same_path() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 1);
        let mut st = SimState::new();
        let t1 = trace(&w.net, &mut st, &vp, dst, 7, 0, 32, 3);
        let t2 = trace(&w.net, &mut st, &vp, dst, 7, 1000, 32, 3);
        let addrs = |t: &Traceroute| t.hops.iter().map(|h| h.addr).collect::<Vec<_>>();
        assert_eq!(addrs(&t1), addrs(&t2));
    }

    #[test]
    fn unroutable_stops_quickly() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let mut st = SimState::new();
        let tr = trace(&w.net, &mut st, &vp, "172.16.9.9".parse().unwrap(), 7, 0, 32, 2);
        assert!(!tr.reached);
        assert!(tr.hops.len() <= GAP_LIMIT + 2, "{}", tr.hops.len());
    }

    #[test]
    fn gap_limit_on_silent_routers() {
        // Make every router in the transit AS silent and trace through it.
        let mut w = toy(1);
        let silent: Vec<_> = w
            .net
            .topo
            .routers
            .iter()
            .filter(|r| r.asn == toy_asns::TRANSITCO)
            .map(|r| r.id)
            .collect();
        for id in silent {
            w.net.topo.routers[id.0 as usize].icmp = manic_netsim::IcmpProfile::silent();
        }
        // stubco is only reachable via ACME (customer), so pick a transit
        // destination instead: host in TRANSITCO.
        let dst = w.host_addr(toy_asns::TRANSITCO, 0);
        let vp = vp_of(&w, "acme-nyc");
        let mut st = SimState::new();
        let tr = trace(&w.net, &mut st, &vp, dst, 7, 0, 32, 2);
        // The path enters transitco and the host never answers...
        // actually the host router is silent too, so the trace must give up
        // after the gap limit.
        assert!(!tr.reached);
        let trailing_stars = tr.hops.iter().rev().take_while(|h| h.addr.is_none()).count();
        assert_eq!(trailing_stars, GAP_LIMIT);
    }
}
