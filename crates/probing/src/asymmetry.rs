//! Return-path asymmetry detection via the IP record-route option (§7).
//!
//! "We have several potential techniques to detect these cases, including
//! identifying significant differences in baseline delays to the near and
//! far sides of the link, and use of the IP record route option."
//!
//! A record-route probe collects the egress interfaces its packet and the
//! reply actually traversed. The VP then checks, with alias resolution,
//! whether every recorded reply-leg interface sits on a router it already
//! saw on the forward path: if some reply interface aliases with *no*
//! forward hop, the reply came home a different way. The module also
//! implements the paper's other signal — a far-minus-near baseline-delay gap
//! far exceeding what one link crossing can add.

use crate::alias::ally_test;
use crate::path::{probe_path, VpHandle};
use crate::traceroute::Traceroute;
use manic_netsim::time::SimTime;
use manic_netsim::{Ipv4, Network, SimState};

/// Outcome of an asymmetry check for one (vp, destination, ttl).
#[derive(Debug, Clone)]
pub struct AsymmetryReport {
    /// Egress interfaces recorded by the RR option (forward then reply leg).
    pub recorded: Vec<Ipv4>,
    /// Reply-leg interfaces that alias no forward-path router.
    pub foreign_reply_ifaces: Vec<Ipv4>,
    /// Baseline (min) RTT gap between far and near targets, ms.
    pub baseline_gap_ms: Option<f64>,
    /// Verdict: the reply plausibly crossed a different interconnection.
    pub asymmetric: bool,
}

/// Baseline far-minus-near gap beyond which §7's delay signal fires: one
/// extra link crossing plus ICMP generation stays well under this.
pub const BASELINE_GAP_MS: f64 = 15.0;

/// Run the record-route asymmetry check for the far end of a link.
///
/// `trace` is the traceroute that discovered the link (its hops are the
/// forward-path interfaces); `far_ttl` is the TTL expiring at the far end.
/// Returns `None` when the RR probe is unroutable.
pub fn check_far_end(
    net: &Network,
    state: &mut SimState,
    vp: &VpHandle,
    trace: &Traceroute,
    far_ttl: u8,
    t: SimTime,
) -> Option<AsymmetryReport> {
    let recorded = net.record_route(vp.router, vp.addr, trace.dst, far_ttl, trace.flow_id, t)?;
    let forward_hops: Vec<Ipv4> = trace
        .hops
        .iter()
        .take(far_ttl as usize)
        .filter_map(|h| h.addr)
        .collect();

    // The forward leg occupies the first `far_ttl` slots (minus truncation);
    // everything after is the reply leg.
    let fwd_slots = (far_ttl as usize).min(recorded.len());
    let mut foreign = Vec::new();
    for &addr in &recorded[fwd_slots..] {
        // Does this reply interface alias any forward router? The VP's own
        // access interface and hop addresses match trivially.
        let on_forward = addr == vp.addr
            || forward_hops.contains(&addr)
            || forward_hops.iter().any(|&h| {
                ally_test(net, state, vp, addr, h, t) == Some(true)
            });
        if !on_forward {
            foreign.push(addr);
        }
    }

    // Baseline-delay signal: min RTT to far vs near target.
    let baseline_gap_ms = (far_ttl >= 2)
        .then(|| {
            let far = probe_path(net, vp, trace.dst, far_ttl, trace.flow_id, t)?;
            let near = probe_path(net, vp, trace.dst, far_ttl - 1, trace.flow_id, t)?;
            Some(far.base_ms - near.base_ms)
        })
        .flatten();

    let asymmetric = !foreign.is_empty()
        || baseline_gap_ms.map(|g| g > BASELINE_GAP_MS).unwrap_or(false);
    Some(AsymmetryReport {
        recorded,
        foreign_reply_ifaces: foreign,
        baseline_gap_ms,
        asymmetric,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceroute::trace;
    use manic_scenario::worlds::{toy, toy_asns};

    fn vp_of(w: &manic_scenario::World, name: &str) -> VpHandle {
        let vp = w.vp(name);
        VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
    }

    #[test]
    fn tslp_far_end_is_symmetric() {
        // §7's core argument: a probe that terminates at the far end of an
        // interconnection returns across that same link — RR confirms it.
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let mut st = SimState::new();
        let tr = trace(&w.net, &mut st, &vp, dst, 7, 0, 32, 3);
        let gt = &w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let far_ttl = tr.ttl_of(gt.far_addr_from(toy_asns::ACME)).expect("far hop seen");
        let report = check_far_end(&w.net, &mut st, &vp, &tr, far_ttl, 1000).expect("routable");
        assert!(
            !report.asymmetric,
            "TSLP far-end replies ride the measured link: {report:?}"
        );
        assert!(report.foreign_reply_ifaces.is_empty());
        if let Some(gap) = report.baseline_gap_ms {
            assert!(gap < BASELINE_GAP_MS, "gap {gap}");
        }
    }

    #[test]
    fn rr_records_both_legs() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let slots = w.net.record_route(vp.router, vp.addr, dst, 3, 7, 0).expect("routable");
        // Forward 3 hops + reply hops, capped at 9 slots.
        assert!(slots.len() > 3 && slots.len() <= 9, "{slots:?}");
    }
}
