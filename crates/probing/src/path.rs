//! Deterministic probe-path computation and the fluid fast path.
//!
//! A TTL-limited probe's fate is a function of (a) the deterministic
//! forward/reply path under the current routing and flow id, and (b) the
//! time-varying state of each link crossed. The packet-mode prober rolls the
//! dice per probe; the fast path instead computes, per time bin, the
//! *statistic the prober would have recorded*:
//!
//! * min-filtered RTT: both inference algorithms start by taking the minimum
//!   latency per bin to discard jitter and slow-path outliers (§4.1, §4.2),
//!   and the minimum over a bin equals base path delay plus the standing
//!   queue delay (the standing queue delays every packet, so the min cannot
//!   dodge it);
//! * response probability: the product of per-link delivery probabilities
//!   along forward and reply paths, times the responder's ICMP behaviour —
//!   from which per-window loss fractions are synthesized.
//!
//! Using the fast path changes runtime, not distribution shape; the
//! equivalence is tested in `tests/fast_vs_packet.rs`.

use manic_netsim::time::SimTime;
use manic_netsim::topo::Direction;
use manic_netsim::{Ipv4, LinkId, Network, RouterId};

/// A vantage point as the probing layer sees it.
#[derive(Debug, Clone)]
pub struct VpHandle {
    pub name: String,
    pub router: RouterId,
    pub addr: Ipv4,
}

/// The resolved path of one TTL-limited probe under fixed routing.
#[derive(Debug, Clone)]
pub struct ProbePath {
    /// The VP router the probe is sourced from (clock-skew faults key on it).
    pub src: RouterId,
    /// Links crossed by the probe until TTL expiry, with direction.
    pub forward: Vec<(LinkId, Direction)>,
    /// Links crossed by the ICMP reply.
    pub reply: Vec<(LinkId, Direction)>,
    /// The responding router.
    pub responder: RouterId,
    /// The address the response is sourced from.
    pub responder_addr: Ipv4,
    /// Propagation + ICMP-generation baseline, ms (no queueing).
    pub base_ms: f64,
}

impl ProbePath {
    /// Minimum RTT a probe sent at `t` could observe: baseline plus the
    /// standing queue delay on every link crossed in either direction.
    pub fn min_rtt(&self, net: &Network, t: SimTime) -> f64 {
        let mut rtt = self.base_ms + net.fault.clock_skew_ms(self.src, t);
        for &(l, d) in self.forward.iter().chain(&self.reply) {
            rtt += net.link_state(l, d, t).queue_ms;
        }
        rtt
    }

    /// Probability that a single probe sent at `t` yields a response:
    /// per-link delivery on both path legs times the responder's
    /// steady-state ICMP response probability under `offered_pps` probes per
    /// second directed at it.
    pub fn response_prob(&self, net: &Network, t: SimTime, offered_pps: f64) -> f64 {
        let mut p = 1.0;
        for &(l, d) in self.forward.iter().chain(&self.reply) {
            if net.fault.link_blocked(&net.topo, l, t) {
                return 0.0;
            }
            p *= (1.0 - net.link_state(l, d, t).loss - net.fault.extra_loss(l, t)).max(0.0);
        }
        p * self.responder_prob(net, t, offered_pps)
    }

    /// The responder's contribution to delivery probability: ICMP profile
    /// behaviour plus injected faults (silence, reboot blackout, renumbering
    /// — a response from an unexpected alias is no valid sample).
    fn responder_prob(&self, net: &Network, t: SimTime, offered_pps: f64) -> f64 {
        if net.fault.icmp_suppressed(self.responder, t)
            || net.fault.silent_addr(&net.topo, self.responder_addr, t)
            || net.fault.renumbered(&net.topo, self.responder_addr, t) != self.responder_addr
        {
            return 0.0;
        }
        let prof = &net.topo.router(self.responder).icmp;
        let mut p = 1.0 - prof.unresponsive_prob;
        if let Some(flaky) = prof.flaky {
            if flaky.is_flaky_now(net.seed, self.responder.0 as u64, t) {
                p *= 1.0 - flaky.drop_prob;
            }
        }
        let limit = match (prof.rate_limit_pps, net.fault.icmp_limit(self.responder, t)) {
            (Some(own), Some((inj, _))) => Some(own.min(inj)),
            (Some(own), None) => Some(own),
            (None, inj) => inj.map(|(pps, _)| pps),
        };
        if let Some(limit) = limit {
            if offered_pps > limit {
                p *= limit / offered_pps;
            }
        }
        p
    }

    /// Both [`Self::min_rtt`] and [`Self::response_prob`] in one pass — the
    /// longitudinal fast path calls this once per (path, bin).
    pub fn rtt_and_prob(&self, net: &Network, t: SimTime, offered_pps: f64) -> (f64, f64) {
        let mut rtt = self.base_ms + net.fault.clock_skew_ms(self.src, t);
        let mut p = 1.0;
        for &(l, d) in self.forward.iter().chain(&self.reply) {
            let s = net.link_state(l, d, t);
            rtt += s.queue_ms;
            if net.fault.link_blocked(&net.topo, l, t) {
                p = 0.0;
            } else {
                p *= (1.0 - s.loss - net.fault.extra_loss(l, t)).max(0.0);
            }
        }
        (rtt, p * self.responder_prob(net, t, offered_pps))
    }

    /// Does the probe cross `link` on its forward leg?
    pub fn crosses(&self, link: LinkId) -> bool {
        self.forward.iter().any(|&(l, _)| l == link)
    }
}

/// Resolve the path of a probe from `vp` toward `dst` expiring after `ttl`
/// hops (or reaching the destination if it terminates sooner).
///
/// Returns `None` when the TTL extends past a routing dead end, when the
/// expiry router's reply cannot route back, or when `ttl` exceeds the path
/// length to a non-terminating hop (the walk stops at termination).
pub fn probe_path(
    net: &Network,
    vp: &VpHandle,
    dst: Ipv4,
    ttl: u8,
    flow_id: u16,
    t: SimTime,
) -> Option<ProbePath> {
    if ttl == 0 {
        return None;
    }
    let walk = net.forward_path(vp.router, dst, flow_id, t);
    if walk.is_empty() {
        return None;
    }
    let take = (ttl as usize).min(walk.len());
    let reached_dst = take == walk.len() && net.topo.terminates(walk[take - 1].router, dst);
    let hop = &walk[take - 1];
    // TTL larger than the path: the probe reaches the destination and is
    // answered there; TTL smaller: time-exceeded at the expiry hop.
    if (ttl as usize) > walk.len() && !reached_dst {
        return None;
    }
    let responder = hop.router;
    let responder_addr = if reached_dst { dst } else { hop.ingress_addr };

    let forward: Vec<(LinkId, Direction)> =
        walk[..take].iter().map(|h| (h.link, h.direction)).collect();

    // Reply path: from the responder back to the VP address.
    let reply_walk = net.forward_path(responder, vp.addr, flow_id, t);
    if reply_walk.is_empty()
        || reply_walk.last().map(|h| h.router) != Some(vp.router)
    {
        return None;
    }
    let reply: Vec<(LinkId, Direction)> =
        reply_walk.iter().map(|h| (h.link, h.direction)).collect();

    let mut base_ms = net.topo.router(responder).icmp.base_ms;
    for &(l, _) in forward.iter().chain(&reply) {
        base_ms += net.topo.link(l).prop_delay_ms;
    }
    Some(ProbePath { src: vp.router, forward, reply, responder, responder_addr, base_ms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_scenario::worlds::{toy, toy_asns};

    fn vp_of(w: &manic_scenario::World, name: &str) -> VpHandle {
        let vp = w.vp(name);
        VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
    }

    #[test]
    fn path_matches_probe_responder() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        for ttl in 1..8 {
            let Some(pp) = probe_path(&w.net, &vp, dst, ttl, 9, 0) else { continue };
            // Fire an actual probe with high retries to dodge random loss.
            let mut st = manic_netsim::SimState::new();
            for i in 0..20 {
                let s = w.net.send_probe(
                    &mut st,
                    manic_netsim::ProbeSpec {
                        src: vp.router,
                        src_addr: vp.addr,
                        dst,
                        ttl,
                        flow_id: 9,
                    },
                    i * 3,
                );
                if let Some(from) = s.responder() {
                    assert_eq!(from, pp.responder_addr, "ttl {ttl}");
                    break;
                }
            }
        }
    }

    #[test]
    fn min_rtt_close_to_observed_min() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        // Far end of the interdomain link is at some hop; probe several and
        // compare the packet-mode min to the fast-path value.
        let pp = probe_path(&w.net, &vp, dst, 4, 9, 0).expect("path exists");
        let mut st = manic_netsim::SimState::new();
        let mut min_obs = f64::INFINITY;
        for i in 0..30 {
            let s = w.net.send_probe(
                &mut st,
                manic_netsim::ProbeSpec { src: vp.router, src_addr: vp.addr, dst, ttl: 4, flow_id: 9 },
                i,
            );
            if let Some(r) = s.rtt() {
                min_obs = min_obs.min(r);
            }
        }
        let fast = pp.min_rtt(&w.net, 0);
        assert!(min_obs.is_finite());
        assert!(
            (min_obs - fast).abs() < 3.0,
            "packet min {min_obs} vs fast {fast}"
        );
    }

    #[test]
    fn response_prob_in_unit_interval() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let pp = probe_path(&w.net, &vp, dst, 4, 9, 0).unwrap();
        for t in [0i64, 100_000, 1_000_000] {
            let p = pp.response_prob(&w.net, t, 1.0);
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn excess_ttl_is_none_only_past_destination() {
        let w = toy(1);
        let vp = vp_of(&w, "acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let full = w.net.forward_path(vp.router, dst, 9, 0);
        let n = full.len() as u8;
        // Exactly at the destination: echo reply.
        let at = probe_path(&w.net, &vp, dst, n, 9, 0).unwrap();
        assert_eq!(at.responder_addr, dst);
        // Far beyond: still the destination (hosts answer any remaining TTL).
        let beyond = probe_path(&w.net, &vp, dst, n + 10, 9, 0).unwrap();
        assert_eq!(beyond.responder_addr, dst);
        // Unroutable destination: no path at all.
        assert!(probe_path(&w.net, &vp, "172.16.0.1".parse().unwrap(), 5, 9, 0).is_none());
    }
}
