//! Probe-rate budgeting.
//!
//! Every measurement module on a VP runs under a packets-per-second budget:
//! TSLP at 100 pps, border mapping at 100 pps, loss probing at 150 pps
//! (§3.1–§3.3). The budget spaces probe send times so rate-limited routers
//! and the VP's uplink see a smooth stream rather than bursts.

use manic_netsim::time::SimTime;

/// Allocates send times at a fixed rate, never before `not_before`.
///
/// Slots are computed from a probe counter against a fixed origin rather
/// than by accumulating a per-probe interval: truncating the interval to
/// whole microseconds (e.g. 333333 µs at 3 pps) silently runs the budget
/// fast — a whole extra slot every million probes per dropped microsecond —
/// and float accumulation drifts the other way, so neither honors the pps
/// contract rate-limited routers see over long windows.
#[derive(Debug, Clone)]
pub struct RateBudget {
    rate_pps: f64,
    /// Schedule anchor in *microseconds* of simulation time.
    origin_us: i64,
    /// Slots handed out since the anchor.
    emitted: u64,
}

impl RateBudget {
    pub fn new(rate_pps: f64, start: SimTime) -> Self {
        assert!(rate_pps > 0.0);
        RateBudget { rate_pps, origin_us: start * 1_000_000, emitted: 0 }
    }

    /// Reserve the next send slot at or after `now`; returns the slot time
    /// in whole simulation seconds (the resolution probes are issued at).
    pub fn next_slot(&mut self, now: SimTime) -> SimTime {
        let now_us = now * 1_000_000;
        let mut slot =
            self.origin_us + (self.emitted as f64 * 1_000_000.0 / self.rate_pps).round() as i64;
        if slot < now_us {
            // Idle gap: re-anchor the schedule at `now`.
            self.origin_us = now_us;
            self.emitted = 0;
            slot = now_us;
        }
        self.emitted += 1;
        slot / 1_000_000
    }

    /// How many probes fit in a window of `secs` seconds.
    pub fn capacity(&self, secs: f64) -> usize {
        (self.rate_pps * secs) as usize
    }

    /// True when `n` probes fit within a window of `secs` seconds.
    pub fn fits(&self, n: usize, secs: f64) -> bool {
        n <= self.capacity(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_advance_at_rate() {
        let mut b = RateBudget::new(2.0, 0);
        // 2 pps: two probes per second.
        let slots: Vec<SimTime> = (0..6).map(|_| b.next_slot(0)).collect();
        assert_eq!(slots, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn cursor_respects_now() {
        let mut b = RateBudget::new(100.0, 0);
        b.next_slot(0);
        // Jump far ahead: cursor snaps to now.
        assert_eq!(b.next_slot(1000), 1000);
    }

    #[test]
    fn fractional_interval_does_not_drift() {
        // 3 pps has a non-terminating interval (333333.3... µs). An
        // accumulated truncated interval drifts a full second over 10,000
        // slots; the counter-based schedule keeps the long-run rate exact.
        let mut b = RateBudget::new(3.0, 0);
        let mut last = 0;
        for _ in 0..10_000 {
            last = b.next_slot(0);
        }
        // Slot 9999 must start at floor(9999 / 3) = 3333 s exactly.
        assert_eq!(last, 3333);
        // And every second must carry exactly 3 slots: count a sample.
        let mut b = RateBudget::new(3.0, 0);
        let slots: Vec<SimTime> = (0..30).map(|_| b.next_slot(0)).collect();
        for s in 0..10 {
            assert_eq!(
                slots.iter().filter(|&&x| x == s).count(),
                3,
                "second {s} must hold 3 slots: {slots:?}"
            );
        }
    }

    #[test]
    fn schedule_reanchors_cleanly_after_idle_gap() {
        let mut b = RateBudget::new(3.0, 0);
        b.next_slot(0);
        b.next_slot(0);
        // Jump ahead: the phase of the old schedule must not leak into the
        // new alignment.
        assert_eq!(b.next_slot(100), 100);
        let slots: Vec<SimTime> = (0..3).map(|_| b.next_slot(100)).collect();
        assert_eq!(slots, vec![100, 100, 101]);
    }

    #[test]
    fn capacity_math() {
        let b = RateBudget::new(100.0, 0);
        assert_eq!(b.capacity(300.0), 30_000);
        assert!(b.fits(30_000, 300.0));
        assert!(!b.fits(30_001, 300.0));
    }
}
