//! Probe-rate budgeting.
//!
//! Every measurement module on a VP runs under a packets-per-second budget:
//! TSLP at 100 pps, border mapping at 100 pps, loss probing at 150 pps
//! (§3.1–§3.3). The budget spaces probe send times so rate-limited routers
//! and the VP's uplink see a smooth stream rather than bursts.

use manic_netsim::time::SimTime;

/// Allocates send times at a fixed rate, never before `not_before`.
#[derive(Debug, Clone)]
pub struct RateBudget {
    rate_pps: f64,
    /// Next available send time in *microseconds* of simulation time.
    cursor_us: i64,
}

impl RateBudget {
    pub fn new(rate_pps: f64, start: SimTime) -> Self {
        assert!(rate_pps > 0.0);
        RateBudget { rate_pps, cursor_us: start * 1_000_000 }
    }

    /// Reserve the next send slot at or after `now`; returns the slot time
    /// in whole simulation seconds (the resolution probes are issued at).
    pub fn next_slot(&mut self, now: SimTime) -> SimTime {
        let now_us = now * 1_000_000;
        if self.cursor_us < now_us {
            self.cursor_us = now_us;
        }
        let slot = self.cursor_us;
        self.cursor_us += (1_000_000.0 / self.rate_pps) as i64;
        slot / 1_000_000
    }

    /// How many probes fit in a window of `secs` seconds.
    pub fn capacity(&self, secs: f64) -> usize {
        (self.rate_pps * secs) as usize
    }

    /// True when `n` probes fit within a window of `secs` seconds.
    pub fn fits(&self, n: usize, secs: f64) -> bool {
        n <= self.capacity(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_advance_at_rate() {
        let mut b = RateBudget::new(2.0, 0);
        // 2 pps: two probes per second.
        let slots: Vec<SimTime> = (0..6).map(|_| b.next_slot(0)).collect();
        assert_eq!(slots, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn cursor_respects_now() {
        let mut b = RateBudget::new(100.0, 0);
        b.next_slot(0);
        // Jump far ahead: cursor snaps to now.
        assert_eq!(b.next_slot(1000), 1000);
    }

    #[test]
    fn capacity_math() {
        let b = RateBudget::new(100.0, 0);
        assert_eq!(b.capacity(300.0), 30_000);
        assert!(b.fits(30_000, 300.0));
        assert!(!b.fits(30_001, 300.0));
    }
}
