//! Property-based tests for the probing layer.

use manic_probing::tslp::select_targets;
use manic_probing::{RateBudget, Traceroute, TracerouteHop};
use manic_netsim::Ipv4;
use proptest::prelude::*;

fn mk_trace(dst: u32, flow: u16, hops: &[u32]) -> Traceroute {
    Traceroute {
        vp: "vp".into(),
        dst: Ipv4(dst),
        flow_id: flow,
        t: 0,
        hops: hops
            .iter()
            .enumerate()
            .map(|(i, &h)| TracerouteHop {
                ttl: (i + 1) as u8,
                addr: if h == 0 { None } else { Some(Ipv4(h)) },
                rtt_ms: Some(1.0),
            })
            .collect(),
        reached: true,
    }
}

proptest! {
    /// Slot times are monotone non-decreasing and the long-run rate never
    /// exceeds the budget.
    #[test]
    fn rate_budget_monotone_and_bounded(
        rate in 1.0f64..200.0,
        requests in prop::collection::vec(0i64..100, 1..200),
    ) {
        let mut b = RateBudget::new(rate, 0);
        let mut now = 0i64;
        let mut slots = Vec::new();
        for dt in requests {
            now += dt;
            slots.push(b.next_slot(now));
        }
        prop_assert!(slots.windows(2).all(|w| w[0] <= w[1]), "monotone");
        // Count per-window occupancy: any window of W seconds holds at most
        // rate*W + 1 slots.
        if let (Some(&first), Some(&last)) = (slots.first(), slots.last()) {
            let span = (last - first + 1) as f64;
            prop_assert!(
                slots.len() as f64 <= rate * span + rate.max(1.0) + 1.0,
                "{} slots in {span}s at {rate}pps",
                slots.len()
            );
        }
    }

    /// Target selection caps at three destinations, keeps far = near + 1
    /// TTL, and only uses destinations whose trace shows both ends adjacent.
    #[test]
    fn select_targets_invariants(
        n_traces in 1usize..12,
        near in 1u32..1000,
        seed in any::<u64>(),
    ) {
        let far = near + 1;
        let traces: Vec<Traceroute> = (0..n_traces)
            .map(|k| {
                let dst = 10_000 + k as u32;
                // Half the traces show the link adjacently, half skip it.
                // 100_000+ addresses cannot collide with near/far (< 1001).
                if (seed >> k) & 1 == 0 {
                    mk_trace(dst, k as u16, &[100_000, near, far, dst])
                } else {
                    mk_trace(dst, k as u16, &[100_000, near, 200_000, far, dst])
                }
            })
            .collect();
        let tasks = select_targets(&traces, &[(Ipv4(near), Ipv4(far))], |_, _| true);
        for task in &tasks {
            prop_assert!(task.dests.len() <= 3);
            for d in &task.dests {
                prop_assert_eq!(d.far_ttl, d.near_ttl + 1);
                // The chosen destination's trace really shows the pair
                // adjacently.
                let tr = traces.iter().find(|t| t.dst == d.dst).unwrap();
                let ni = tr.hop_of(Ipv4(near)).unwrap();
                prop_assert_eq!(tr.hops[ni + 1].addr, Some(Ipv4(far)));
            }
        }
        // A task exists iff at least one trace qualified.
        let qualified = traces.iter().any(|t| {
            t.hop_of(Ipv4(near))
                .map(|i| t.hops.get(i + 1).and_then(|h| h.addr) == Some(Ipv4(far)))
                .unwrap_or(false)
        });
        prop_assert_eq!(!tasks.is_empty(), qualified);
    }

    /// Preferred (neighbor-space) destinations always sort before fallback
    /// ones.
    #[test]
    fn neighbor_space_destinations_first(mask in 0u8..=255) {
        let near = 50u32;
        let far = 51u32;
        let traces: Vec<Traceroute> = (0..8usize)
            .map(|k| mk_trace(20_000 + k as u32, 1, &[5, near, far, 20_000 + k as u32]))
            .collect();
        let preferred = move |dst: Ipv4, _far: Ipv4| (mask >> (dst.0 - 20_000)) & 1 == 1;
        let tasks = select_targets(&traces, &[(Ipv4(near), Ipv4(far))], preferred);
        if let Some(task) = tasks.first() {
            let flags: Vec<bool> = task.dests.iter().map(|d| preferred(d.dst, Ipv4(far))).collect();
            // Once a fallback appears, no preferred may follow.
            let first_fallback = flags.iter().position(|&p| !p).unwrap_or(flags.len());
            prop_assert!(flags[first_fallback..].iter().all(|&p| !p), "{flags:?}");
        }
    }
}
