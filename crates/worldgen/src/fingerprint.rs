//! Determinism fingerprints.
//!
//! A fingerprint is a 64-bit FNV-1a digest over a canonical serialization of
//! the generated topology (and, for built worlds, of the compiled ground
//! truth and VP roster). Two runs with the same `(name, seed)` must produce
//! the same fingerprint on any machine and at any `--threads`; the world
//! sweep and CI both hard-fail on divergence. The digest deliberately covers
//! only platform-independent integers and strings — no pointers, hash-map
//! iteration orders, or floats.

use crate::gen::Topology;
use manic_scenario::World;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0193;

/// Incremental FNV-1a 64 hasher.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    pub fn new() -> Fnv {
        Fnv::default()
    }

    pub fn bytes(&mut self, bs: &[u8]) -> &mut Self {
        for &b in bs {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a generated topology: spec identity, every node
/// (ASN, tier, name, metros), every directed edge, VP placements, IXP pairs.
pub fn topology_fingerprint(t: &Topology) -> u64 {
    let mut h = Fnv::new();
    h.str(&t.spec.name).u64(t.seed);
    h.u64(t.graph.len() as u64).u64(t.graph.edge_count() as u64);
    for n in t.graph.nodes() {
        h.u32(t.graph.asn(n).0);
        h.bytes(&[t.graph.tier(n) as u8]);
        h.str(t.graph.name(n));
        for m in t.graph.pops(n) {
            h.bytes(&[m.0]);
        }
        for &(m, rel) in t.graph.neighbors(n) {
            h.u32(m).bytes(&[rel as u8]);
        }
    }
    for &(n, m) in &t.vp_placements {
        h.u32(n).bytes(&[m.0]);
    }
    for &(a, c) in &t.ixp_pairs {
        h.u32(a).u32(c);
    }
    h.finish()
}

/// Fingerprint of a compiled world's observable surface: the ground-truth
/// link roster (ASNs, metros, addresses, IXP flag) and the VP roster.
pub fn world_fingerprint(world: &World) -> u64 {
    let mut h = Fnv::new();
    h.u64(world.gt_links.len() as u64).u64(world.vps.len() as u64);
    for gt in &world.gt_links {
        h.u32(gt.a_asn.0).u32(gt.b_asn.0);
        h.str(&gt.a_metro).str(&gt.b_metro);
        h.u32(gt.a_ext.0).u32(gt.b_ext.0);
        h.bytes(&[gt.via_ixp as u8]);
    }
    for vp in &world.vps {
        h.str(&vp.name).u32(vp.asn.0).str(&vp.pop).u32(vp.addr.0);
    }
    h.finish()
}

/// Combined fingerprint of a built world (topology, if generated, plus the
/// compiled surface).
pub fn combine(topo: Option<u64>, world: u64) -> u64 {
    let mut h = Fnv::new();
    h.u64(topo.unwrap_or(0)).u64(world);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, WorldSpec};

    #[test]
    fn fnv_is_stable() {
        // Reference value pinned so the digest can never silently change:
        // any alteration to the hash function breaks stored fingerprints.
        assert_eq!(Fnv::new().str("manic").finish(), {
            let mut h = Fnv::new();
            h.u64(5).bytes(b"manic");
            h.finish()
        });
        assert_ne!(Fnv::new().u32(1).finish(), Fnv::new().u32(2).finish());
    }

    #[test]
    fn topology_fingerprint_tracks_seed() {
        let spec = WorldSpec::planetary("sim-1k", 1_000, 16);
        let a = topology_fingerprint(&generate(&spec, 41));
        let b = topology_fingerprint(&generate(&spec, 41));
        let c = topology_fingerprint(&generate(&spec, 42));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
