//! # manic-worldgen
//!
//! Seeded planetary-scale world generation for the congestion-inference
//! stack. The hand-built worlds (`toy`, `us`) exercise the pipeline against
//! a few dozen ASes; the paper's system faced the actual Internet — tens of
//! thousands of networks, a power-law customer-cone hierarchy, IXP fabrics,
//! CDNs flat-peering into the broadband edge, and measurement coverage from
//! hundreds of vantage points. This crate grows worlds of that shape on
//! demand, deterministically, from a `(name, seed)` pair:
//!
//! * [`gen`] — the generator: tier-1 clique, transit band, CDNs, access
//!   ISPs, and a preferential-attachment stub tail, sized by [`gen::WorldSpec`];
//! * [`graph`] — the compact topology it produces: interned strings, `u32`
//!   node ids, CSR adjacency — a 50k-AS planet in a few megabytes;
//! * [`route`] — lazy per-destination Gao-Rexford routing, so structure
//!   checks never materialize an all-pairs table;
//! * [`build`] — the library resolver and *focus compiler*: the ~190-AS
//!   focus universe is compiled to router level through the classic
//!   scenario compiler, the far tail stays compact;
//! * [`scenarios`] — the scenario library (steady mix, flash crowds,
//!   maintenance, catchment shifts), each planting machine-checkable
//!   ground truth;
//! * [`fingerprint`] — determinism digests that CI compares across seeds,
//!   machines, and thread counts.

pub mod build;
pub mod fingerprint;
pub mod gen;
pub mod graph;
pub mod intern;
pub mod rng;
pub mod route;
pub mod scenarios;

pub use build::{
    build_world, build_world_full, compile_world, library_names, spec_for, BuiltWorld,
    WorldError, WorldStats, STUDY_MONTHS,
};
pub use fingerprint::{topology_fingerprint, world_fingerprint};
pub use gen::{generate, Topology, WorldSpec};
pub use graph::{CompactGraph, GraphBuilder, NodeId, Rel, Tier};
pub use route::{valley_free, LazyRoutes};
pub use scenarios::{library as scenario_library, Planted, Scenario, ScenarioKind};
