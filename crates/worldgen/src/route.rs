//! Lazy per-destination Gao-Rexford routing over the compact graph.
//!
//! `manic_scenario::Routing::compute` materializes a dense all-pairs table —
//! at 20k ASes that is 400M routes, far past any memory budget. The planetary
//! pipeline never needs all pairs: the focus compiler needs routes toward the
//! ~190 compiled ASes, and the structure tests need routes toward planted
//! interconnects. [`LazyRoutes`] computes one destination's table on first
//! use (a three-phase BFS, `O(V + E)`) and caches it, so total cost scales
//! with destinations actually asked about.
//!
//! The phase structure, preference order, and tie-breaks mirror
//! `manic_scenario::bgp` exactly: customer > peer > provider, then shorter
//! AS path, then lowest next-hop ASN.

use crate::graph::{CompactGraph, NodeId, Rel};
use std::collections::{HashMap, VecDeque};

/// How the selected route was learned; lower = more preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Learned {
    Origin,
    Customer,
    Peer,
    Provider,
}

/// Route of one source node toward the table's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    pub learned: Learned,
    pub path_len: u32,
    pub next_hop: NodeId,
}

/// On-demand routing tables, one per destination asked about.
pub struct LazyRoutes<'g> {
    g: &'g CompactGraph,
    cache: HashMap<NodeId, Vec<Option<Entry>>>,
}

impl<'g> LazyRoutes<'g> {
    pub fn new(g: &'g CompactGraph) -> LazyRoutes<'g> {
        LazyRoutes { g, cache: HashMap::new() }
    }

    /// Number of destination tables computed so far — the laziness meter.
    pub fn tables_computed(&self) -> usize {
        self.cache.len()
    }

    /// The full table toward `dst`, computed on first use.
    pub fn table(&mut self, dst: NodeId) -> &[Option<Entry>] {
        if !self.cache.contains_key(&dst) {
            let table = compute_for(self.g, dst);
            self.cache.insert(dst, table);
        }
        &self.cache[&dst]
    }

    /// The route `src` uses toward `dst`, if reachable.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Entry> {
        self.table(dst)[src as usize]
    }

    /// Node-id path from `src` to `dst`, inclusive. Panics on loops, which
    /// the computation cannot produce.
    pub fn path(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let e = self.route(cur, dst)?;
            let next = if e.learned == Learned::Origin { return None } else { e.next_hop };
            assert!(!path.contains(&next), "routing loop at node {next} toward {dst}");
            path.push(next);
            cur = next;
        }
        Some(path)
    }
}

fn better(incumbent: Option<Entry>, cand: Entry, g: &CompactGraph) -> bool {
    match incumbent {
        None => true,
        Some(inc) => {
            (cand.learned, cand.path_len, g.asn(cand.next_hop).0)
                < (inc.learned, inc.path_len, g.asn(inc.next_hop).0)
        }
    }
}

/// Neighbors of `n` with relationship `want`, sorted by ASN. Node ids follow
/// the generator's ASN plan, so id order is ASN order; the sort is kept as a
/// guard for hand-built graphs.
fn rel_neighbors(g: &CompactGraph, n: NodeId, want: Rel) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = g
        .neighbors(n)
        .iter()
        .filter(|(_, r)| *r == want)
        .map(|(m, _)| *m)
        .collect();
    out.sort_unstable_by_key(|&m| g.asn(m).0);
    out
}

/// Three-phase BFS for one destination; mirrors
/// `manic_scenario::bgp::Routing::compute_for`.
fn compute_for(g: &CompactGraph, dst: NodeId) -> Vec<Option<Entry>> {
    let mut best: Vec<Option<Entry>> = vec![None; g.len()];
    best[dst as usize] = Some(Entry { learned: Learned::Origin, path_len: 0, next_hop: dst });

    // Phase 1 — customer routes propagate upward (customer -> provider).
    let mut queue = VecDeque::from([dst]);
    while let Some(cur) = queue.pop_front() {
        let cur_route = best[cur as usize].expect("queued nodes are routed");
        for p in rel_neighbors(g, cur, Rel::Provider) {
            let cand = Entry {
                learned: Learned::Customer,
                path_len: cur_route.path_len + 1,
                next_hop: cur,
            };
            if better(best[p as usize], cand, g) {
                best[p as usize] = Some(cand);
                queue.push_back(p);
            }
        }
    }

    // Phase 2 — peer routes extend one hop off any customer/origin holder.
    let mut holders: Vec<NodeId> = best
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_some_and(|e| e.learned <= Learned::Customer))
        .map(|(i, _)| i as NodeId)
        .collect();
    holders.sort_unstable_by_key(|&n| g.asn(n).0);
    for holder in holders {
        let route = best[holder as usize].expect("holder is routed");
        for peer in rel_neighbors(g, holder, Rel::Peer) {
            let cand = Entry {
                learned: Learned::Peer,
                path_len: route.path_len + 1,
                next_hop: holder,
            };
            if better(best[peer as usize], cand, g) {
                best[peer as usize] = Some(cand);
            }
        }
    }

    // Phase 3 — provider routes propagate downward (provider -> customer).
    let mut frontier: Vec<NodeId> = best
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_some())
        .map(|(i, _)| i as NodeId)
        .collect();
    frontier.sort_unstable_by_key(|&n| (best[n as usize].unwrap().path_len, g.asn(n).0));
    let mut queue: VecDeque<NodeId> = frontier.into();
    while let Some(cur) = queue.pop_front() {
        let cur_route = best[cur as usize].expect("queued nodes are routed");
        for c in rel_neighbors(g, cur, Rel::Customer) {
            let cand = Entry {
                learned: Learned::Provider,
                path_len: cur_route.path_len + 1,
                next_hop: cur,
            };
            if better(best[c as usize], cand, g) {
                best[c as usize] = Some(cand);
                queue.push_back(c);
            }
        }
    }

    best
}

/// Valley-freedom of a node-id path: zero or more up (customer->provider)
/// steps, at most one peer step, then zero or more down steps.
pub fn valley_free(g: &CompactGraph, path: &[NodeId]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Phase {
        Up,
        Peered,
        Down,
    }
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let Some(rel) = g.rel(w[0], w[1]) else { return false };
        match rel {
            Rel::Provider => {
                if phase > Phase::Up {
                    return false;
                }
            }
            Rel::Peer => {
                if phase > Phase::Up {
                    return false;
                }
                phase = Phase::Peered;
            }
            Rel::Customer => phase = Phase::Down,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, Tier};
    use manic_netsim::AsNumber;
    use manic_scenario::intern::metros::*;

    /// The same motif as `manic_scenario::bgp`'s tests:
    /// T1 -- T2 peers; A, B customers of T1; C customer of T2; S customer of
    /// A; A peers with C.
    fn world() -> (CompactGraph, [NodeId; 6]) {
        let mut b = GraphBuilder::new();
        let t1 = b.add_node(AsNumber(1), "t1", Tier::Tier1, vec![NYC]);
        let t2 = b.add_node(AsNumber(2), "t2", Tier::Tier1, vec![NYC]);
        let a = b.add_node(AsNumber(10), "a", Tier::Access, vec![NYC]);
        let bb = b.add_node(AsNumber(11), "b", Tier::Access, vec![NYC]);
        let c = b.add_node(AsNumber(12), "c", Tier::Content, vec![NYC]);
        let s = b.add_node(AsNumber(20), "s", Tier::Stub, vec![NYC]);
        b.add_p2p(t1, t2);
        b.add_c2p(a, t1);
        b.add_c2p(bb, t1);
        b.add_c2p(c, t2);
        b.add_c2p(s, a);
        b.add_p2p(a, c);
        (b.freeze(), [t1, t2, a, bb, c, s])
    }

    #[test]
    fn matches_dense_reference_semantics() {
        let (g, [t1, t2, a, bb, c, s]) = world();
        let mut r = LazyRoutes::new(&g);
        // Customer route preferred at T1 toward S.
        let e = r.route(t1, s).unwrap();
        assert_eq!(e.learned, Learned::Customer);
        assert_eq!(e.next_hop, a);
        // Peer beats provider at A toward C.
        assert_eq!(r.route(a, c).unwrap().learned, Learned::Peer);
        // B -> C is the provider route across the T1-T2 peering.
        assert_eq!(r.path(bb, c).unwrap(), vec![bb, t1, t2, c]);
        // Peer routes are not transited: T1 reaches C via T2, not via A.
        assert_eq!(r.path(t1, c).unwrap(), vec![t1, t2, c]);
        // S uses A's exported peer route.
        assert_eq!(r.path(s, c).unwrap(), vec![s, a, c]);
        // Only the tables actually touched were computed.
        assert_eq!(r.tables_computed(), 2);
    }

    #[test]
    fn all_paths_valley_free() {
        let (g, nodes) = world();
        let mut r = LazyRoutes::new(&g);
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let path = r.path(src, dst).expect("connected");
                assert!(valley_free(&g, &path), "valley in {path:?}");
            }
        }
    }

    #[test]
    fn valley_detector_rejects_peer_then_up() {
        let (g, [_, t2, a, _, c, s]) = world();
        assert!(!valley_free(&g, &[s, a, c, t2]));
        assert!(!valley_free(&g, &[a, c, t2]));
        assert!(valley_free(&g, &[s, a, c]));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(AsNumber(1), "x", Tier::Stub, vec![NYC]);
        let y = b.add_node(AsNumber(2), "y", Tier::Stub, vec![NYC]);
        let g = b.freeze();
        let mut r = LazyRoutes::new(&g);
        assert!(r.route(x, y).is_none());
        assert!(r.path(x, y).is_none());
    }
}
