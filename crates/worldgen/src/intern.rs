//! String interner for the compact topology.
//!
//! A planetary graph holds tens of thousands of AS names and org labels;
//! storing each as an owned `String` per node costs a heap allocation and
//! ~24 bytes of header apiece. The interner stores each distinct string once
//! and hands out dense `u32` symbols — the graph's name/org columns are then
//! flat `Vec<Sym>` arrays.

use std::collections::HashMap;

/// Symbol: index into the interner's string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// Append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, Sym>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), sym);
        sym
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Approximate heap footprint in bytes (string payloads + table slots).
    pub fn mem_bytes(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        payload * 2 + self.strings.len() * (std::mem::size_of::<String>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_and_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("tata");
        let b = i.intern("ntt");
        let a2 = i.intern("tata");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "tata");
        assert_eq!(i.resolve(b), "ntt");
        assert_eq!(i.len(), 2);
    }
}
