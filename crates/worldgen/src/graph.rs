//! Compact AS-level topology.
//!
//! `manic_scenario::AsGraph` keeps a `BTreeMap` of owned `AsInfo` records and
//! a `BTreeMap` of edges — fine for a few hundred ASes, ruinous for tens of
//! thousands (every neighbor query walks the whole edge map). The compact
//! graph is the planetary representation: nodes are dense `u32` ids, names
//! and orgs are interned symbols ([`crate::intern`]), PoP lists are
//! arena-packed `MetroId` bytes, and adjacency is a CSR (compressed sparse
//! row) array built once at freeze time. Neighbor iteration is a slice; the
//! whole 20k-AS graph fits in a couple of megabytes.

use crate::intern::{Interner, Sym};
use manic_netsim::AsNumber;
use manic_scenario::MetroId;
use std::collections::HashMap;

/// Role of an AS in the generated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Settlement-free clique at the top.
    Tier1,
    /// Regional / tier-2 transit.
    Transit,
    /// CDN / content network with broad flat peering.
    Content,
    /// Broadband eyeball network (hosts VPs).
    Access,
    /// Stub edge network.
    Stub,
}

impl Tier {
    pub fn label(self) -> &'static str {
        match self {
            Tier::Tier1 => "tier1",
            Tier::Transit => "transit",
            Tier::Content => "content",
            Tier::Access => "access",
            Tier::Stub => "stub",
        }
    }
}

/// Relationship of a node toward one neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// Neighbor sells transit to this node.
    Provider,
    /// Neighbor buys transit from this node.
    Customer,
    /// Settlement-free peer.
    Peer,
}

impl Rel {
    /// The same edge seen from the other end.
    pub fn flip(self) -> Rel {
        match self {
            Rel::Provider => Rel::Customer,
            Rel::Customer => Rel::Provider,
            Rel::Peer => Rel::Peer,
        }
    }
}

/// Dense node id.
pub type NodeId = u32;

/// Frozen compact topology. Built through [`GraphBuilder`].
#[derive(Debug, Clone)]
pub struct CompactGraph {
    asns: Vec<AsNumber>,
    tiers: Vec<Tier>,
    names: Vec<Sym>,
    orgs: Vec<Sym>,
    /// Arena-packed PoP lists: node `i`'s metros are
    /// `pop_dat[pop_off[i]..pop_off[i+1]]`.
    pop_off: Vec<u32>,
    pop_dat: Vec<MetroId>,
    /// CSR adjacency: node `i`'s neighbors are
    /// `adj_dat[adj_off[i]..adj_off[i+1]]`, sorted by neighbor id.
    adj_off: Vec<u32>,
    adj_dat: Vec<(NodeId, Rel)>,
    interner: Interner,
    index: HashMap<AsNumber, NodeId>,
    edge_count: usize,
}

impl CompactGraph {
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    pub fn asn(&self, n: NodeId) -> AsNumber {
        self.asns[n as usize]
    }

    pub fn tier(&self, n: NodeId) -> Tier {
        self.tiers[n as usize]
    }

    pub fn name(&self, n: NodeId) -> &str {
        self.interner.resolve(self.names[n as usize])
    }

    pub fn org(&self, n: NodeId) -> &str {
        self.interner.resolve(self.orgs[n as usize])
    }

    pub fn pops(&self, n: NodeId) -> &[MetroId] {
        let (a, b) = (self.pop_off[n as usize], self.pop_off[n as usize + 1]);
        &self.pop_dat[a as usize..b as usize]
    }

    /// Neighbors of `n` with `n`'s relationship toward each, sorted by id.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, Rel)] {
        let (a, b) = (self.adj_off[n as usize], self.adj_off[n as usize + 1]);
        &self.adj_dat[a as usize..b as usize]
    }

    pub fn node_of(&self, asn: AsNumber) -> Option<NodeId> {
        self.index.get(&asn).copied()
    }

    /// All node ids, in insertion (= ASN-plan) order.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.len() as NodeId
    }

    /// Relationship of `a` toward `b`, if adjacent.
    pub fn rel(&self, a: NodeId, b: NodeId) -> Option<Rel> {
        self.neighbors(a)
            .binary_search_by_key(&b, |(n, _)| *n)
            .ok()
            .map(|i| self.neighbors(a)[i].1)
    }

    /// Per-tier node counts, in [`Tier`] declaration order.
    pub fn tier_histogram(&self) -> [(Tier, usize); 5] {
        let mut h = [
            (Tier::Tier1, 0),
            (Tier::Transit, 0),
            (Tier::Content, 0),
            (Tier::Access, 0),
            (Tier::Stub, 0),
        ];
        for &t in &self.tiers {
            let slot = match t {
                Tier::Tier1 => 0,
                Tier::Transit => 1,
                Tier::Content => 2,
                Tier::Access => 3,
                Tier::Stub => 4,
            };
            h[slot].1 += 1;
        }
        h
    }

    /// Approximate resident footprint of the graph in bytes. The memory
    /// budget DESIGN.md §5i quotes comes from here.
    pub fn mem_bytes(&self) -> usize {
        self.asns.len() * std::mem::size_of::<AsNumber>()
            + self.tiers.len()
            + self.names.len() * 4
            + self.orgs.len() * 4
            + self.pop_off.len() * 4
            + self.pop_dat.len()
            + self.adj_off.len() * 4
            + self.adj_dat.len() * std::mem::size_of::<(NodeId, Rel)>()
            + self.index.len() * 16
            + self.interner.mem_bytes()
    }
}

/// Mutable accumulation stage for [`CompactGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    asns: Vec<AsNumber>,
    tiers: Vec<Tier>,
    names: Vec<Sym>,
    orgs: Vec<Sym>,
    pops: Vec<Vec<MetroId>>,
    /// Directed half-edges `(from, to, rel-of-from-toward-to)`; each
    /// undirected edge is stored once and mirrored at freeze.
    edges: Vec<(NodeId, NodeId, Rel)>,
    interner: Interner,
    index: HashMap<AsNumber, NodeId>,
}

impl GraphBuilder {
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    pub fn add_node(&mut self, asn: AsNumber, name: &str, tier: Tier, pops: Vec<MetroId>) -> NodeId {
        assert!(
            !self.index.contains_key(&asn),
            "duplicate AS {asn} in generated graph"
        );
        assert!(!pops.is_empty(), "AS {asn} has no PoPs");
        let id = self.asns.len() as NodeId;
        let sym = self.interner.intern(name);
        self.asns.push(asn);
        self.tiers.push(tier);
        self.names.push(sym);
        self.orgs.push(sym); // generated worlds use one org per AS
        self.pops.push(pops);
        self.index.insert(asn, id);
        id
    }

    /// `customer` buys transit from `provider`.
    pub fn add_c2p(&mut self, customer: NodeId, provider: NodeId) {
        assert_ne!(customer, provider, "self edge");
        self.edges.push((customer, provider, Rel::Provider));
    }

    /// Settlement-free peering.
    pub fn add_p2p(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self edge");
        self.edges.push((a, b, Rel::Peer));
    }

    pub fn contains(&self, asn: AsNumber) -> bool {
        self.index.contains_key(&asn)
    }

    pub fn node_count(&self) -> usize {
        self.asns.len()
    }

    pub fn pops_of(&self, n: NodeId) -> &[MetroId] {
        &self.pops[n as usize]
    }

    /// True when an edge between `a` and `b` was already recorded.
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.edges
            .iter()
            .any(|&(x, y, _)| (x == a && y == b) || (x == b && y == a))
    }

    /// Freeze into the CSR representation.
    pub fn freeze(self) -> CompactGraph {
        let n = self.asns.len();
        let mut degree = vec![0u32; n];
        for &(a, b, _) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut adj_off = vec![0u32; n + 1];
        for i in 0..n {
            adj_off[i + 1] = adj_off[i] + degree[i];
        }
        let mut cursor = adj_off[..n].to_vec();
        let mut adj_dat = vec![(0 as NodeId, Rel::Peer); self.edges.len() * 2];
        for &(a, b, rel) in &self.edges {
            adj_dat[cursor[a as usize] as usize] = (b, rel);
            cursor[a as usize] += 1;
            adj_dat[cursor[b as usize] as usize] = (a, rel.flip());
            cursor[b as usize] += 1;
        }
        // Sort each row by neighbor id so `rel()` can binary-search and the
        // layout is canonical (fingerprint-stable).
        for i in 0..n {
            let (a, b) = (adj_off[i] as usize, adj_off[i + 1] as usize);
            adj_dat[a..b].sort_unstable_by_key(|(m, _)| *m);
            // A duplicate neighbor means the generator drew the same edge
            // twice — a bug worth failing loudly on.
            for w in adj_dat[a..b].windows(2) {
                assert_ne!(w[0].0, w[1].0, "duplicate edge at node {i}");
            }
        }
        let mut pop_off = vec![0u32; n + 1];
        for (i, p) in self.pops.iter().enumerate() {
            pop_off[i + 1] = pop_off[i] + p.len() as u32;
        }
        let pop_dat: Vec<MetroId> = self.pops.into_iter().flatten().collect();
        CompactGraph {
            asns: self.asns,
            tiers: self.tiers,
            names: self.names,
            orgs: self.orgs,
            pop_off,
            pop_dat,
            adj_off,
            adj_dat,
            interner: self.interner,
            index: self.index,
            edge_count: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_scenario::intern::metros::*;

    fn tiny() -> CompactGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_node(AsNumber(100), "t1", Tier::Tier1, vec![NYC, CHI]);
        let a = b.add_node(AsNumber(3000), "isp", Tier::Access, vec![NYC]);
        let c = b.add_node(AsNumber(2000), "cdn", Tier::Content, vec![NYC, SJC]);
        b.add_c2p(a, t);
        b.add_c2p(c, t);
        b.add_p2p(a, c);
        b.freeze()
    }

    #[test]
    fn csr_rows_and_rels() {
        let g = tiny();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3);
        let t = g.node_of(AsNumber(100)).unwrap();
        let a = g.node_of(AsNumber(3000)).unwrap();
        let c = g.node_of(AsNumber(2000)).unwrap();
        assert_eq!(g.rel(a, t), Some(Rel::Provider));
        assert_eq!(g.rel(t, a), Some(Rel::Customer));
        assert_eq!(g.rel(a, c), Some(Rel::Peer));
        assert_eq!(g.rel(c, a), Some(Rel::Peer));
        assert_eq!(g.rel(t, c), Some(Rel::Customer));
        assert_eq!(g.neighbors(t).len(), 2);
        assert_eq!(g.pops(c), &[NYC, SJC]);
        assert_eq!(g.name(a), "isp");
        assert_eq!(g.tier(c), Tier::Content);
    }

    #[test]
    fn histogram_counts_tiers() {
        let g = tiny();
        let h = g.tier_histogram();
        assert_eq!(h[0], (Tier::Tier1, 1));
        assert_eq!(h[2], (Tier::Content, 1));
        assert_eq!(h[3], (Tier::Access, 1));
        assert_eq!(h[4], (Tier::Stub, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected_at_freeze() {
        let mut b = GraphBuilder::new();
        let t = b.add_node(AsNumber(100), "t1", Tier::Tier1, vec![NYC]);
        let a = b.add_node(AsNumber(3000), "isp", Tier::Access, vec![NYC]);
        b.add_c2p(a, t);
        b.add_p2p(a, t);
        b.freeze();
    }
}
