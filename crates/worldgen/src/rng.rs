//! Deterministic generator-local randomness.
//!
//! The generator must be a pure function of `(spec, seed)`: the same world
//! name and seed must produce bit-identical topologies on any machine, any
//! thread count, any build. A splitmix64 stream gives that with no shared
//! state — every generation site derives its own `Rng` from the world seed
//! plus a site salt, so inserting a new call site never perturbs the streams
//! of existing ones.

/// A splitmix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream derived from `(seed, salt)`. Distinct salts give
    /// statistically independent streams.
    pub fn new(seed: u64, salt: u64) -> Rng {
        Rng {
            state: seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// In-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// `k` distinct indices out of `[0, n)`, in shuffled order.
    pub fn pick_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot pick {k} of {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_salt() {
        let a: Vec<u64> = (0..8).map({
            let mut r = Rng::new(7, 1);
            move |_| r.next_u64()
        }).collect();
        let b: Vec<u64> = (0..8).map({
            let mut r = Rng::new(7, 1);
            move |_| r.next_u64()
        }).collect();
        let c: Vec<u64> = (0..8).map({
            let mut r = Rng::new(7, 2);
            move |_| r.next_u64()
        }).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pick_distinct_is_distinct() {
        let mut r = Rng::new(3, 9);
        for _ in 0..50 {
            let picks = r.pick_distinct(10, 4);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11, 0);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
