//! Building runnable worlds: the library resolver and the focus compiler.
//!
//! The pipeline for a generated world is
//!
//! ```text
//! (name, seed) -> WorldSpec -> Topology (compact, full planet)
//!              -> focus AsGraph (~190 ASes) -> scenario::compile()
//!              -> World (+ default steady congestion)
//! ```
//!
//! Only the *focus universe* gets router-level compilation; the far stub
//! tail lives in the compact graph alone, where the stats, fingerprints,
//! and structure tests can still see it. Classic worlds ("toy", "us")
//! resolve through the same front door, so every consumer — CLI, serve,
//! checkpoints, benches — accepts generated names wherever it accepted the
//! hand-built ones.

use crate::fingerprint::{combine, topology_fingerprint, world_fingerprint};
use crate::gen::{generate, Topology, WorldSpec};
use crate::graph::{Rel, Tier};
use crate::scenarios;
use manic_netsim::AsNumber;
use manic_scenario::asgraph::{AsGraph, AsInfo, AsKind};
use manic_scenario::{compile, CompileConfig, CompileError, World};
use std::collections::HashSet;
use std::ops::Range;

/// Study months (indices since Jan 2016) used by default scenario installs
/// and by the world sweep: a 60-day window starting in April 2016.
pub const STUDY_MONTHS: Range<u32> = 3..5;

/// Errors resolving or building a world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// Not a library name.
    Unknown { name: String, known: Vec<&'static str> },
    Compile(CompileError),
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::Unknown { name, known } => {
                write!(f, "unknown world '{name}' (library: {})", known.join(", "))
            }
            WorldError::Compile(e) => write!(f, "world failed to compile: {e}"),
        }
    }
}

impl std::error::Error for WorldError {}

impl From<CompileError> for WorldError {
    fn from(e: CompileError) -> Self {
        WorldError::Compile(e)
    }
}

/// Every world name the library resolves.
pub fn library_names() -> Vec<&'static str> {
    vec!["toy", "us", "sim-1k", "sim-5k", "planet-20k", "planet-50k"]
}

/// The generator spec behind a library name, if it is a generated world.
pub fn spec_for(name: &str) -> Option<WorldSpec> {
    match name {
        "sim-1k" => Some(WorldSpec::planetary(name, 1_000, 16)),
        "sim-5k" => Some(WorldSpec::planetary(name, 5_000, 32)),
        "planet-20k" => Some(WorldSpec::planetary(name, 20_000, 200)),
        "planet-50k" => Some(WorldSpec::planetary(name, 50_000, 240)),
        _ => None,
    }
}

/// Headline numbers of a built world, for `manic world --stats` and the
/// sweep's structural gates.
#[derive(Debug, Clone)]
pub struct WorldStats {
    /// ASes in the full (compact) universe.
    pub total_ases: usize,
    /// Undirected AS-level adjacencies in the full universe.
    pub as_adjacencies: usize,
    /// ASes compiled to router level.
    pub focus_ases: usize,
    /// IP-level interdomain links (ground-truth roster).
    pub interconnects: usize,
    pub vps: usize,
    /// `(tier label, count)` over the full universe.
    pub tiers: Vec<(&'static str, usize)>,
    /// Approximate heap bytes of the compact graph (0 for classic worlds).
    pub graph_mem_bytes: usize,
}

/// A resolved library world plus its provenance.
pub struct BuiltWorld {
    pub name: String,
    pub seed: u64,
    pub world: World,
    /// The generated topology; `None` for classic hand-built worlds.
    pub topo: Option<Topology>,
    /// Determinism fingerprint (topology digest folded with the compiled
    /// ground-truth/VP roster digest).
    pub fingerprint: u64,
    pub stats: WorldStats,
}

fn kind_of(tier: Tier) -> AsKind {
    match tier {
        Tier::Tier1 | Tier::Transit => AsKind::Transit,
        Tier::Content => AsKind::Content,
        Tier::Access => AsKind::AccessIsp,
        Tier::Stub => AsKind::Stub,
    }
}

/// Project the focus universe of a generated topology onto the classic
/// AS-graph the scenario compiler consumes.
pub fn focus_graph(topo: &Topology) -> AsGraph {
    let cg = &topo.graph;
    let focus: HashSet<_> = topo.focus.iter().copied().collect();
    let mut g = AsGraph::new();
    for &n in &topo.focus {
        g.add_as(AsInfo {
            asn: cg.asn(n),
            name: cg.name(n).to_string(),
            kind: kind_of(cg.tier(n)),
            org: cg.org(n).to_string(),
            pops: manic_scenario::intern::codes(cg.pops(n)),
        });
    }
    for &n in &topo.focus {
        for &(m, rel) in cg.neighbors(n) {
            // Visit each undirected edge once, from its lower node id.
            if n >= m || !focus.contains(&m) {
                continue;
            }
            match rel {
                Rel::Provider => g.add_c2p(cg.asn(n), cg.asn(m)),
                Rel::Customer => g.add_c2p(cg.asn(m), cg.asn(n)),
                Rel::Peer => g.add_p2p(cg.asn(n), cg.asn(m)),
            }
        }
    }
    g
}

/// Compile a generated topology's focus universe to a router-level world.
/// No congestion is installed — the scenario library does that.
pub fn compile_focus(topo: &Topology, seed: u64) -> Result<World, CompileError> {
    let cg = &topo.graph;
    let graph = focus_graph(topo);
    let vps: Vec<(AsNumber, &str)> =
        topo.vp_placements.iter().map(|&(n, m)| (cg.asn(n), m.code())).collect();
    let ixp: Vec<(AsNumber, AsNumber)> =
        topo.ixp_pairs.iter().map(|&(a, c)| (cg.asn(a), cg.asn(c))).collect();
    let cfg = CompileConfig { seed, ..CompileConfig::default() };
    compile::compile(graph, &vps, &ixp, &cfg)
}

fn classic_stats(world: &World) -> WorldStats {
    let mut tiers: Vec<(&'static str, usize)> = Vec::new();
    for info in world.graph.ases() {
        let label = match info.kind {
            AsKind::Transit => "transit",
            AsKind::Content => "content",
            AsKind::AccessIsp => "access",
            AsKind::Stub => "stub",
            AsKind::Ixp => "ixp",
        };
        match tiers.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => tiers.push((label, 1)),
        }
    }
    tiers.sort();
    WorldStats {
        total_ases: world.graph.len(),
        as_adjacencies: world.graph.adjacencies().count(),
        focus_ases: world.graph.len(),
        interconnects: world.gt_links.len(),
        vps: world.vps.len(),
        tiers,
        graph_mem_bytes: 0,
    }
}

fn generated_stats(topo: &Topology, world: &World) -> WorldStats {
    WorldStats {
        total_ases: topo.graph.len(),
        as_adjacencies: topo.graph.edge_count(),
        focus_ases: topo.focus.len(),
        interconnects: world.gt_links.len(),
        vps: world.vps.len(),
        tiers: topo.graph.tier_histogram().iter().map(|&(t, c)| (t.label(), c)).collect(),
        graph_mem_bytes: topo.graph.mem_bytes(),
    }
}

/// Resolve a library name to a compiled world **without** congestion
/// installed on generated worlds. Classic worlds arrive as their hand-built
/// selves (which include their scripted congestion).
pub fn compile_world(name: &str, seed: u64) -> Result<BuiltWorld, WorldError> {
    match name {
        "toy" => {
            let world = manic_scenario::worlds::toy(seed);
            let fp = combine(None, world_fingerprint(&world));
            let stats = classic_stats(&world);
            Ok(BuiltWorld { name: name.into(), seed, world, topo: None, fingerprint: fp, stats })
        }
        "us" => {
            let world = manic_scenario::worlds::us_broadband(seed);
            let fp = combine(None, world_fingerprint(&world));
            let stats = classic_stats(&world);
            Ok(BuiltWorld { name: name.into(), seed, world, topo: None, fingerprint: fp, stats })
        }
        other => {
            let Some(spec) = spec_for(other) else {
                return Err(WorldError::Unknown {
                    name: other.to_string(),
                    known: library_names(),
                });
            };
            let topo = generate(&spec, seed);
            let world = compile_focus(&topo, seed)?;
            let fp = combine(Some(topology_fingerprint(&topo)), world_fingerprint(&world));
            let stats = generated_stats(&topo, &world);
            Ok(BuiltWorld {
                name: other.to_string(),
                seed,
                world,
                topo: Some(topo),
                fingerprint: fp,
                stats,
            })
        }
    }
}

/// Resolve a library name to a runnable world. Generated worlds get the
/// steady-mix scenario installed so `run`/`serve` observe congestion out of
/// the box; classic worlds are returned as-is.
pub fn build_world_full(name: &str, seed: u64) -> Result<BuiltWorld, WorldError> {
    let mut built = compile_world(name, seed)?;
    if built.topo.is_some() {
        let steady = scenarios::library()[0];
        debug_assert_eq!(steady.key, "steady");
        steady.install(&mut built.world, seed, STUDY_MONTHS);
    }
    Ok(built)
}

/// [`build_world_full`], discarding provenance — the drop-in replacement for
/// the old per-crate `match name { "toy" | "us" }` resolvers.
pub fn build_world(name: &str, seed: u64) -> Result<World, WorldError> {
    Ok(build_world_full(name, seed)?.world)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_names_still_resolve() {
        let toy = build_world_full("toy", 1).unwrap();
        assert!(toy.topo.is_none());
        assert!(toy.stats.interconnects > 0);
        assert!(toy.fingerprint != 0);
        let Err(err) = build_world("nope", 1) else { panic!("unknown world must fail") };
        let err = err.to_string();
        assert!(err.contains("sim-5k"), "error should list the library: {err}");
    }

    #[test]
    fn generated_world_compiles_and_matches_plan() {
        let b = build_world_full("sim-1k", 5).unwrap();
        let stats = &b.stats;
        assert_eq!(stats.total_ases, 1_000);
        assert!(stats.focus_ases <= 190);
        assert!(stats.interconnects > 100, "got {}", stats.interconnects);
        assert_eq!(stats.vps, 16);
        assert_eq!(b.world.vps.len(), 16);
        // VP names follow the {isp}-{pop} convention and are unique.
        let mut names: Vec<&str> = b.world.vps.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn same_seed_same_fingerprint_different_seed_differs() {
        let a = build_world_full("sim-1k", 9).unwrap();
        let b = build_world_full("sim-1k", 9).unwrap();
        let c = build_world_full("sim-1k", 10).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn steady_install_gives_generated_worlds_load() {
        let b = build_world_full("sim-1k", 5).unwrap();
        let loaded = b
            .world
            .gt_links
            .iter()
            .filter(|gt| {
                let link = b.world.net.topo.link(gt.link);
                link.load_ab.is_some() || link.load_ba.is_some()
            })
            .count();
        assert_eq!(loaded, b.world.gt_links.len(), "every gt link carries a load model");
    }
}
