//! Scenario library: scripted congestion stories with planted ground truth.
//!
//! Each scenario takes a compiled [`World`] and installs load models, fault
//! events, or routing epochs on it, returning the planted ground truth —
//! the set of (access ISP, provider) pairs whose interconnects the
//! measurement pipeline *should* flag as persistently congested over the
//! study window. The world sweep scores the pipeline's verdicts against
//! this plant, per world, per scenario.
//!
//! All effects are applied to the `World` before `System::new`, so the
//! library depends only on `manic-scenario`/`manic-netsim` — never on the
//! measurement stack it is used to judge.

use crate::rng::Rng;
use manic_netsim::fault::{FaultEvent, FaultKind, FaultScope};
use manic_netsim::time::{day_index, SimTime, SECS_PER_DAY};
use manic_netsim::traffic::{DiurnalDemand, MonthScale};
use manic_netsim::{AsNumber, Fib, Ipv4, LoadModel};
use manic_scenario::asgraph::AsKind;
use manic_scenario::schedule::{month_schedule, CongestionEpisode};
use manic_scenario::worlds::{install_congestion, EYEBALL_BASE_UTIL, IDLE_AMPLITUDE};
use manic_scenario::{GtLink, World};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::sync::Arc;

/// The library's congestion-story shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The paper's bread-and-butter: a mix of persistently congested and
    /// clean access-CDN interconnects, elevated ~5h nightly for the whole
    /// window.
    SteadyMix,
    /// Flash-crowd transients: short recurring overload runs on a few
    /// pairs, plus sub-threshold decoy bursts that must NOT be flagged.
    FlashCrowd,
    /// Mid-study maintenance: renumbering, interface silence, and route
    /// flaps on clean links while the planted pairs stay congested.
    Maintenance,
    /// A catchment shift: halfway through the study, access ISPs repoint a
    /// CDN's address block to their transit provider (routing epoch swap).
    CatchmentShift,
}

/// One library entry.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    pub kind: ScenarioKind,
    /// Stable key used in CLI/bench selectors and result files.
    pub key: &'static str,
    pub blurb: &'static str,
}

/// Every scenario the library ships.
pub fn library() -> Vec<Scenario> {
    vec![
        Scenario {
            kind: ScenarioKind::SteadyMix,
            key: "steady",
            blurb: "persistent nightly congestion on ~4 CDN pairs per access ISP",
        },
        Scenario {
            kind: ScenarioKind::FlashCrowd,
            key: "flash",
            blurb: "8-day flash crowds per access ISP plus sub-threshold decoys",
        },
        Scenario {
            kind: ScenarioKind::Maintenance,
            key: "maint",
            blurb: "steady congestion while clean links renumber, silence, and flap",
        },
        Scenario {
            kind: ScenarioKind::CatchmentShift,
            key: "shift",
            blurb: "steady congestion across a mid-study CDN catchment shift",
        },
    ]
}

/// Ground truth planted by a scenario installation.
#[derive(Debug, Clone, Default)]
pub struct Planted {
    /// Normalized `(low ASN, high ASN)` pairs expected to be flagged.
    pub gt: BTreeSet<(AsNumber, AsNumber)>,
}

/// Normalized pair key, matching the sweep's scoring key.
pub fn pair_key(a: AsNumber, b: AsNumber) -> (AsNumber, AsNumber) {
    if a < b { (a, b) } else { (b, a) }
}

impl Scenario {
    /// Install this scenario on `world` for the study `months` (indices
    /// since Jan 2016), deterministically from `seed`.
    pub fn install(&self, world: &mut World, seed: u64, months: Range<u32>) -> Planted {
        match self.kind {
            ScenarioKind::SteadyMix => steady_mix(world, seed, months, 4),
            ScenarioKind::FlashCrowd => flash_crowd(world, seed, months),
            ScenarioKind::Maintenance => maintenance(world, seed, months),
            ScenarioKind::CatchmentShift => catchment_shift(world, seed, months),
        }
    }
}

/// Access-CDN adjacency pairs that have compiled interconnects, grouped by
/// access ISP, in deterministic (ASN-sorted) order.
fn eyeball_pairs(world: &World) -> BTreeMap<AsNumber, Vec<AsNumber>> {
    let mut by_ap: BTreeMap<AsNumber, BTreeSet<AsNumber>> = BTreeMap::new();
    for gt in &world.gt_links {
        let (a, b) = (gt.a_asn, gt.b_asn);
        let (a_kind, b_kind) = (world.graph.info(a).kind, world.graph.info(b).kind);
        let (ap, other) = if a_kind == AsKind::AccessIsp {
            (a, b)
        } else if b_kind == AsKind::AccessIsp {
            (b, a)
        } else {
            continue;
        };
        if world.graph.info(other).kind == AsKind::Content {
            by_ap.entry(ap).or_default().insert(other);
        }
    }
    by_ap.into_iter().map(|(ap, set)| (ap, set.into_iter().collect())).collect()
}

/// Pick `per_ap` CDN partners per access ISP, shuffled by `rng`.
fn pick_pairs(world: &World, rng: &mut Rng, per_ap: usize) -> Vec<(AsNumber, AsNumber)> {
    let mut picked = Vec::new();
    for (ap, mut cdns) in eyeball_pairs(world) {
        rng.shuffle(&mut cdns);
        for tcp in cdns.into_iter().take(per_ap) {
            picked.push((ap, tcp));
        }
    }
    picked
}

fn steady_mix(world: &mut World, seed: u64, months: Range<u32>, per_ap: usize) -> Planted {
    let mut rng = Rng::new(seed, 0x57E_AD1);
    let picked = pick_pairs(world, &mut rng, per_ap);
    let episodes: Vec<CongestionEpisode> = picked
        .iter()
        .map(|&(ap, tcp)| CongestionEpisode::new(ap, tcp, months.clone(), 5.0))
        .collect();
    install_congestion(world, &episodes);
    Planted { gt: picked.into_iter().map(|(a, b)| pair_key(a, b)).collect() }
}

/// Load model for flash crowds: on listed days the link behaves exactly like
/// a steadily congested day (same diurnal overload shape the detector is
/// calibrated for); on all other days it carries the quiet profile.
#[derive(Debug)]
struct BurstDemand {
    hot: DiurnalDemand,
    quiet: DiurnalDemand,
    days: BTreeSet<i64>,
}

impl LoadModel for BurstDemand {
    fn utilization(&self, t: SimTime) -> f64 {
        if self.days.contains(&day_index(t)) {
            self.hot.utilization(t)
        } else {
            self.quiet.utilization(t)
        }
    }
}

fn quiet_profile(tz: i8, seed: u64) -> DiurnalDemand {
    DiurnalDemand {
        base: 0.25,
        amplitude: 0.25,
        peak_hour: 21.0,
        peak_width: 2.6,
        tz_offset_hours: tz,
        weekend_factor: 1.0,
        monthly: MonthScale::flat(),
        noise_amp: 0.02,
        noise_seed: seed,
    }
}

/// Metro timezone of `asn`'s side of the link.
fn tz_of(gt: &GtLink, asn: AsNumber) -> i8 {
    let metro = if gt.a_asn == asn { &gt.a_metro } else { &gt.b_metro };
    manic_scenario::compile::metro_info(metro).2
}

/// Install a burst profile toward `ap` on every link of the pair.
fn install_bursts(
    world: &mut World,
    ap: AsNumber,
    tcp: AsNumber,
    months: &Range<u32>,
    days: &BTreeSet<i64>,
) {
    let episode = CongestionEpisode::new(ap, tcp, months.clone(), 5.0);
    let links: Vec<usize> = world
        .gt_links
        .iter()
        .enumerate()
        .filter(|(_, gt)| gt.touches(ap) && gt.touches(tcp))
        .map(|(i, _)| i)
        .collect();
    for i in links {
        let gt = world.gt_links[i].clone();
        let tz = tz_of(&gt, ap);
        let seed_toward = (gt.link.0 as u64) << 1 | u64::from(gt.a_asn == ap);
        let toward_ap = BurstDemand {
            hot: DiurnalDemand {
                base: EYEBALL_BASE_UTIL,
                amplitude: 1.0,
                peak_hour: 21.0,
                peak_width: 2.6,
                tz_offset_hours: tz,
                weekend_factor: 1.0,
                monthly: month_schedule(&[&episode], EYEBALL_BASE_UTIL, IDLE_AMPLITUDE),
                noise_amp: 0.02,
                noise_seed: seed_toward,
            },
            quiet: quiet_profile(tz, seed_toward),
            days: days.clone(),
        };
        let link = world.net.topo.link_mut(gt.link);
        let model: Arc<dyn LoadModel> = Arc::new(toward_ap);
        if gt.a_asn == ap {
            link.load_ba = Some(model); // toward side A
        } else {
            link.load_ab = Some(model);
        }
    }
}

fn flash_crowd(world: &mut World, seed: u64, months: Range<u32>) -> Planted {
    // Quiet baseline everywhere first.
    install_congestion(world, &[]);
    let mut rng = Rng::new(seed, 0xF1A54);
    let day0 = day_index(manic_netsim::time::month_start(months.start));

    // One genuine flash-crowd pair per access ISP: 8 recurring burst days —
    // above the detector's 5-day recurrence bar.
    let genuine = pick_pairs(world, &mut rng, 1);
    let burst_days: BTreeSet<i64> = (6..14).map(|d| day0 + d).collect();
    for &(ap, tcp) in &genuine {
        install_bursts(world, ap, tcp, &months, &burst_days);
    }

    // Decoys: 3-day bursts on *other* pairs — below the recurrence bar, so
    // flagging one is a precision failure.
    let gt_set: BTreeSet<(AsNumber, AsNumber)> =
        genuine.iter().map(|&(a, b)| pair_key(a, b)).collect();
    let decoy_days: BTreeSet<i64> = (20..23).map(|d| day0 + d).collect();
    let decoys: Vec<(AsNumber, AsNumber)> = pick_pairs(world, &mut rng, 2)
        .into_iter()
        .filter(|&(a, b)| !gt_set.contains(&pair_key(a, b)))
        .take(genuine.len().div_ceil(3).max(2))
        .collect();
    for &(ap, tcp) in &decoys {
        install_bursts(world, ap, tcp, &months, &decoy_days);
    }

    Planted { gt: gt_set }
}

fn maintenance(world: &mut World, seed: u64, months: Range<u32>) -> Planted {
    let planted = steady_mix(world, seed, months.clone(), 2);
    let day0 = manic_netsim::time::month_start(months.start);

    // Fault clean links (pairs outside the plant) in the back half of the
    // study, well after bdrmap's probing-state construction.
    let clean: Vec<GtLink> = world
        .gt_links
        .iter()
        .filter(|gt| !planted.gt.contains(&pair_key(gt.a_asn, gt.b_asn)))
        .cloned()
        .collect();
    let mut rng = Rng::new(seed, 0xFA017);
    let n_faults = clean.len().min(12);
    let mut events = Vec::new();
    for (i, idx) in rng.pick_distinct(clean.len(), n_faults).into_iter().enumerate() {
        let gt = &clean[idx];
        // The faulted side: the non-eyeball end when there is one.
        let far_addr = if world.graph.info(gt.a_asn).kind == AsKind::AccessIsp {
            gt.b_ext
        } else {
            gt.a_ext
        };
        let Some(ifc) = world.net.topo.iface_by_addr(far_addr) else { continue };
        let at = |d: i64| day0 + d * SECS_PER_DAY;
        events.push(match i % 3 {
            // Mid-study renumbering: the far interface answers from a new
            // address for a week.
            0 => FaultEvent::window(
                FaultKind::Renumber { alias: Ipv4(0xC0A8_0000 | (ifc.id.0 & 0xFFFF)) },
                FaultScope::Iface(ifc.id),
                at(30),
                at(37),
            ),
            // Maintenance silence: two dark days.
            1 => FaultEvent::window(
                FaultKind::IfaceSilence,
                FaultScope::Iface(ifc.id),
                at(32),
                at(34),
            ),
            // Route flaps around the maintenance window.
            _ => FaultEvent::window(
                FaultKind::RouteFlap { up_secs: 1_800, down_secs: 120 },
                FaultScope::Link(gt.link),
                at(31),
                at(33),
            ),
        });
    }
    for e in events {
        world.net.fault.push(e);
    }
    planted
}

fn catchment_shift(world: &mut World, seed: u64, months: Range<u32>) -> Planted {
    let planted = steady_mix(world, seed, months.clone(), 3);
    let t0 = manic_netsim::time::month_start(months.start);
    let t_shift = t0 + 30 * SECS_PER_DAY;

    // Halfway through the study each access ISP repoints the address block
    // of its lowest-ASN planted CDN at its transit provider: the CDN's
    // direct peering stops carrying that block's traffic (the catchment
    // moves), but the planted congestion toward the eyeballs persists.
    let mut fibs: Vec<Fib> = (0..world.net.topo.routers.len())
        .map(|r| world.net.fib(manic_netsim::RouterId(r as u32), t0).clone())
        .collect();
    let mut shifted = false;
    for (ap, cdns) in eyeball_pairs(world) {
        let Some(&cdn) = cdns
            .iter()
            .find(|&&c| planted.gt.contains(&pair_key(ap, c)))
        else {
            continue;
        };
        let Some(&provider) = world.graph.providers(ap).first() else { continue };
        let cdn_block = world.addressing.of(cdn).block;
        let via_addr = world.addressing.of(provider).block.addr();
        for router in &world.net.topo.routers {
            if router.asn != ap {
                continue;
            }
            let fib = &mut fibs[router.id.0 as usize];
            if let Some(via) = fib.lookup(via_addr).map(|g| g.to_vec()) {
                fib.insert(cdn_block, via);
                shifted = true;
            }
        }
    }
    assert!(shifted, "catchment shift must repoint at least one block");
    world.net.add_epoch(t_shift, fibs);
    planted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::compile_world;

    fn test_world() -> World {
        compile_world("sim-1k", 5).expect("library world").world
    }

    #[test]
    fn library_keys_are_stable() {
        let keys: Vec<&str> = library().iter().map(|s| s.key).collect();
        assert_eq!(keys, vec!["steady", "flash", "maint", "shift"]);
    }

    #[test]
    fn steady_plants_pairs_with_links() {
        let mut world = test_world();
        let planted = library()[0].install(&mut world, 5, 3..5);
        assert!(!planted.gt.is_empty());
        for &(a, b) in &planted.gt {
            assert!(
                world.gt_links.iter().any(|gt| gt.touches(a) && gt.touches(b)),
                "planted pair ({a:?},{b:?}) has no compiled interconnect"
            );
        }
    }

    #[test]
    fn flash_gt_excludes_decoys_and_is_deterministic() {
        let mut w1 = test_world();
        let p1 = library()[1].install(&mut w1, 5, 3..5);
        let mut w2 = test_world();
        let p2 = library()[1].install(&mut w2, 5, 3..5);
        assert_eq!(p1.gt, p2.gt);
        assert!(!p1.gt.is_empty());
    }

    #[test]
    fn maintenance_faults_only_clean_links() {
        let mut world = test_world();
        let planted = library()[2].install(&mut world, 5, 3..5);
        assert!(!planted.gt.is_empty());
        assert!(!world.net.fault.is_empty(), "maintenance must install faults");
    }

    #[test]
    fn catchment_shift_adds_epoch() {
        let mut world = test_world();
        let t0 = manic_netsim::time::month_start(3);
        let before = world.net.fib(manic_netsim::RouterId(0), t0 + 40 * SECS_PER_DAY).clone();
        let planted = library()[3].install(&mut world, 5, 3..5);
        assert!(!planted.gt.is_empty());
        // Some router's FIB differs after the shift instant.
        let shifted = (0..world.net.topo.routers.len()).any(|r| {
            let r = manic_netsim::RouterId(r as u32);
            let a = world.net.fib(r, t0);
            let b = world.net.fib(r, t0 + 40 * SECS_PER_DAY);
            !std::ptr::eq(a, b)
        });
        assert!(shifted);
        let _ = before;
    }
}
