//! The planetary topology generator.
//!
//! A generated world has the macro-structure the paper's measurement system
//! faced: a small settlement-free tier-1 clique, a band of tier-2 transit
//! networks buying from the clique, CDNs with broad flat peering into the
//! eyeball edge, dozens of broadband access ISPs hosting the VPs, and a
//! power-law tail of tens of thousands of stub networks attached by
//! preferential attachment (a Polya-urn lottery: every customer an AS wins
//! makes the next stub more likely to pick it — the classic rich-get-richer
//! process behind observed customer-cone distributions).
//!
//! Everything is a pure function of `(spec, seed)`; see [`crate::rng`].
//!
//! The *focus universe* is the subset of ASes that gets router-level
//! compilation (PoPs, border routers, /30s, FIBs): every non-stub AS plus a
//! deterministic sample of stubs. The far edge exists only in the compact
//! graph — visible to stats, fingerprints, and the lazy router, but costing
//! four bytes of ASN instead of a router mesh. The compiled universe is kept
//! under the addressing plan's 200-AS ceiling by construction.

use crate::graph::{CompactGraph, GraphBuilder, NodeId, Tier};
use crate::rng::Rng;
use manic_netsim::AsNumber;
use manic_scenario::intern::{metro_count, MetroId};

/// ASN bands of the generator's plan. Node-id order follows band order, so
/// id order is ASN order — the lazy router's tie-breaks rely on this.
pub const TIER1_ASN_BASE: u32 = 101;
pub const TIER2_ASN_BASE: u32 = 1_001;
pub const CONTENT_ASN_BASE: u32 = 2_001;
pub const ACCESS_ASN_BASE: u32 = 3_001;
pub const STUB_ASN_BASE: u32 = 10_001;

/// Size plan of one generated world.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    pub name: String,
    /// Total AS count, including the stub tail.
    pub total_ases: usize,
    /// Vantage points, placed round-robin across access ISPs and metros.
    pub vps: usize,
    pub tier1: usize,
    pub tier2: usize,
    pub content: usize,
    pub access: usize,
    /// Stubs included in the router-level focus universe.
    pub focus_stubs: usize,
    /// Access-CDN adjacencies interconnected at the IXP fabric.
    pub ixp_pairs: usize,
}

impl WorldSpec {
    /// Derive a consistent plan from headline numbers. The tier sizes keep
    /// the focus universe under the 200-AS addressing ceiling and every
    /// per-AS capacity cap (linknet /30 slots, PoP /24s) with headroom.
    pub fn planetary(name: &str, total_ases: usize, vps: usize) -> WorldSpec {
        assert!(total_ases >= 200, "planetary worlds start at 200 ASes");
        let tier1 = if total_ases < 2_000 { 8 } else { 12 };
        let tier2 = (total_ases / 125).clamp(12, 40);
        let content = (total_ases / 300).clamp(8, 28);
        let access = (vps.div_ceil(4)).clamp(12, 48);
        let core = tier1 + tier2 + content + access;
        assert!(core + 8 < total_ases, "no room for a stub tail");
        let focus_stubs = (190 - core).min(60);
        let spec = WorldSpec {
            name: name.to_string(),
            total_ases,
            vps,
            tier1,
            tier2,
            content,
            access,
            focus_stubs,
            ixp_pairs: (access * content / 24).clamp(4, 24),
        };
        assert!(
            spec.focus_len() <= 190,
            "focus universe {} exceeds the addressing plan",
            spec.focus_len()
        );
        // Access ISPs get at least 5 metros each; VP placements must fit.
        assert!(
            vps <= access * 5,
            "{vps} VPs need more than {access} access ISPs x 5 metros"
        );
        spec
    }

    /// Number of ASes in the router-level focus universe.
    pub fn focus_len(&self) -> usize {
        self.tier1 + self.tier2 + self.content + self.access + self.focus_stubs
    }
}

/// A generated topology: the compact graph plus everything the focus
/// compiler and the stats/fingerprint paths need.
#[derive(Debug, Clone)]
pub struct Topology {
    pub spec: WorldSpec,
    pub seed: u64,
    pub graph: CompactGraph,
    /// `(access node, metro)` per VP; distinct pairs by construction.
    pub vp_placements: Vec<(NodeId, MetroId)>,
    /// Access-CDN adjacencies that interconnect over the IXP LAN.
    pub ixp_pairs: Vec<(NodeId, NodeId)>,
    /// Node ids compiled to router level, in id order.
    pub focus: Vec<NodeId>,
}

/// Draw `k` distinct metros.
fn metros(rng: &mut Rng, k: usize) -> Vec<MetroId> {
    rng.pick_distinct(metro_count(), k.min(metro_count()))
        .into_iter()
        .map(|i| MetroId(i as u8))
        .collect()
}

/// Generate the world for `(spec, seed)`.
pub fn generate(spec: &WorldSpec, seed: u64) -> Topology {
    let mut b = GraphBuilder::new();

    // --- Nodes, in ASN-band order -------------------------------------
    let mut rng = Rng::new(seed, 0x6E0_DE5);
    let tier1: Vec<NodeId> = (0..spec.tier1)
        .map(|i| {
            let k = 9 + rng.below(4); // 9..=12 metros
            b.add_node(
                AsNumber(TIER1_ASN_BASE + i as u32),
                &format!("t1-{i:02}"),
                Tier::Tier1,
                metros(&mut rng, k),
            )
        })
        .collect();
    let tier2: Vec<NodeId> = (0..spec.tier2)
        .map(|i| {
            let k = 4 + rng.below(3); // 4..=6
            b.add_node(
                AsNumber(TIER2_ASN_BASE + i as u32),
                &format!("tr-{i:02}"),
                Tier::Transit,
                metros(&mut rng, k),
            )
        })
        .collect();
    let content: Vec<NodeId> = (0..spec.content)
        .map(|i| {
            let k = 8 + rng.below(5); // 8..=12
            b.add_node(
                AsNumber(CONTENT_ASN_BASE + i as u32),
                &format!("cdn-{i:02}"),
                Tier::Content,
                metros(&mut rng, k),
            )
        })
        .collect();
    let access: Vec<NodeId> = (0..spec.access)
        .map(|i| {
            let k = 5 + rng.below(3); // 5..=7
            b.add_node(
                AsNumber(ACCESS_ASN_BASE + i as u32),
                &format!("isp-{i:02}"),
                Tier::Access,
                metros(&mut rng, k),
            )
        })
        .collect();

    // --- Core relationships -------------------------------------------
    let mut rng = Rng::new(seed, 0xED6E5);
    // Tier-1 full-mesh peering.
    for (i, &a) in tier1.iter().enumerate() {
        for &p in tier1.iter().skip(i + 1) {
            b.add_p2p(a, p);
        }
    }
    // Tier-2: two tier-1 providers, sparse lateral peering.
    for (i, &t) in tier2.iter().enumerate() {
        for pi in rng.pick_distinct(tier1.len(), 2) {
            b.add_c2p(t, tier1[pi]);
        }
        for &u in tier2.iter().skip(i + 1) {
            if rng.chance(0.15) {
                b.add_p2p(t, u);
            }
        }
    }
    // Content: one tier-1 and one tier-2 transit provider.
    for &c in &content {
        b.add_c2p(c, tier1[rng.below(tier1.len())]);
        b.add_c2p(c, tier2[rng.below(tier2.len())]);
    }
    // Access: one tier-1 and one tier-2 transit provider, flat peering with
    // every CDN (the paper's peering-dispute battleground), sparse lateral
    // access-access peering.
    for (i, &a) in access.iter().enumerate() {
        b.add_c2p(a, tier1[rng.below(tier1.len())]);
        b.add_c2p(a, tier2[rng.below(tier2.len())]);
        for &c in &content {
            b.add_p2p(a, c);
        }
        for &other in access.iter().skip(i + 1) {
            if rng.chance(0.08) {
                b.add_p2p(a, other);
            }
        }
    }

    // --- Stub tail by preferential attachment -------------------------
    let mut rng = Rng::new(seed, 0x57AB5);
    let n_stubs = spec.total_ases - (spec.tier1 + spec.tier2 + spec.content + spec.access);
    // Polya-urn lottery over the provider pool (access + tier-2): a
    // provider's tickets grow with every customer it wins.
    let mut lottery: Vec<NodeId> = access.iter().chain(tier2.iter()).copied().collect();
    for i in 0..n_stubs {
        let first = lottery[rng.below(lottery.len())];
        let pops = vec![*pick(&mut rng, b.pops_of(first))];
        let stub = b.add_node(
            AsNumber(STUB_ASN_BASE + i as u32),
            &format!("stub-{i:05}"),
            Tier::Stub,
            pops,
        );
        b.add_c2p(stub, first);
        lottery.push(first);
        if rng.chance(0.3) {
            let second = lottery[rng.below(lottery.len())];
            if second != first {
                b.add_c2p(stub, second);
                lottery.push(second);
            }
        }
    }

    let graph = b.freeze();

    // --- VP placements -------------------------------------------------
    let mut vp_placements = Vec::with_capacity(spec.vps);
    for i in 0..spec.vps {
        let isp = access[i % access.len()];
        let slot = i / access.len();
        let pops = graph.pops(isp);
        assert!(slot < pops.len(), "VP plan exceeds access metro capacity");
        vp_placements.push((isp, pops[slot]));
    }

    // --- IXP fabric -----------------------------------------------------
    let mut rng = Rng::new(seed, 0x1C39A);
    let mut ixp_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut tries = 0;
    while ixp_pairs.len() < spec.ixp_pairs && tries < spec.ixp_pairs * 20 {
        tries += 1;
        let pair = (access[rng.below(access.len())], content[rng.below(content.len())]);
        if !ixp_pairs.contains(&pair) {
            ixp_pairs.push(pair);
        }
    }

    // --- Focus universe -------------------------------------------------
    let mut focus: Vec<NodeId> = tier1
        .iter()
        .chain(&tier2)
        .chain(&content)
        .chain(&access)
        .copied()
        .collect();
    let stub_base = focus.len() as NodeId;
    focus.extend((0..spec.focus_stubs as NodeId).map(|i| stub_base + i));
    debug_assert!(focus.windows(2).all(|w| w[0] < w[1]));

    Topology {
        spec: spec.clone(),
        seed,
        graph,
        vp_placements,
        ixp_pairs,
        focus,
    }
}

fn pick<'a, T>(rng: &mut Rng, xs: &'a [T]) -> &'a T {
    &xs[rng.below(xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Rel;

    #[test]
    fn spec_sizing_is_sane() {
        let s = WorldSpec::planetary("planet-20k", 20_000, 200);
        assert!(s.focus_len() <= 190);
        assert_eq!(s.total_ases, 20_000);
        let s = WorldSpec::planetary("sim-1k", 1_000, 16);
        assert!(s.focus_len() <= 190);
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = WorldSpec::planetary("sim-1k", 1_000, 16);
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.vp_placements, b.vp_placements);
        assert_eq!(a.ixp_pairs, b.ixp_pairs);
        let c = generate(&spec, 8);
        assert_ne!(
            (a.graph.edge_count(), a.vp_placements.clone()),
            (c.graph.edge_count(), c.vp_placements.clone())
        );
    }

    #[test]
    fn structure_matches_plan() {
        let spec = WorldSpec::planetary("sim-1k", 1_000, 16);
        let t = generate(&spec, 3);
        assert_eq!(t.graph.len(), 1_000);
        let hist = t.graph.tier_histogram();
        assert_eq!(hist[0].1, spec.tier1);
        assert_eq!(hist[3].1, spec.access);
        assert_eq!(hist[4].1, 1_000 - spec.tier1 - spec.tier2 - spec.content - spec.access);
        // ASN plan: node-id order is ASN order.
        let asns: Vec<u32> = t.graph.nodes().map(|n| t.graph.asn(n).0).collect();
        let mut sorted = asns.clone();
        sorted.sort_unstable();
        assert_eq!(asns, sorted);
        // Every stub has at least one provider; every access ISP peers with
        // every CDN.
        for n in t.graph.nodes() {
            match t.graph.tier(n) {
                Tier::Stub => assert!(
                    t.graph.neighbors(n).iter().any(|(_, r)| *r == Rel::Provider)
                ),
                Tier::Access => {
                    let peers = t
                        .graph
                        .neighbors(n)
                        .iter()
                        .filter(|(m, r)| *r == Rel::Peer && t.graph.tier(*m) == Tier::Content)
                        .count();
                    assert_eq!(peers, spec.content);
                }
                _ => {}
            }
        }
        // VP placements are distinct (asn, metro) pairs.
        let mut seen: Vec<(NodeId, MetroId)> = t.vp_placements.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), t.vp_placements.len());
    }

    #[test]
    fn stub_tail_is_heavy_tailed() {
        let spec = WorldSpec::planetary("sim-5k", 5_000, 32);
        let t = generate(&spec, 11);
        // Customer counts over the provider pool: the max should be well
        // above the mean (rich get richer), and the distribution long-tailed.
        let mut cone: Vec<usize> = t
            .graph
            .nodes()
            .filter(|&n| matches!(t.graph.tier(n), Tier::Access | Tier::Transit))
            .map(|n| {
                t.graph
                    .neighbors(n)
                    .iter()
                    .filter(|(_, r)| *r == Rel::Customer)
                    .count()
            })
            .collect();
        cone.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = cone.iter().sum();
        let mean = total as f64 / cone.len() as f64;
        assert!(
            cone[0] as f64 > 3.0 * mean,
            "max cone {} vs mean {mean:.1} — not heavy-tailed",
            cone[0]
        );
        // Top 20% of providers hold the majority of customers.
        let top: usize = cone.iter().take(cone.len() / 5).sum();
        assert!(top * 2 > total, "top quintile holds {top} of {total}");
    }
}
