//! Virtual filesystem shim for the storage layer.
//!
//! Every file the durability path touches — WAL segments, checkpoint
//! snapshots and metadata, the obs journal sink — goes through the small
//! [`Vfs`] trait instead of `std::fs` directly. Production uses [`RealVfs`]
//! (a thin passthrough); the fault-injection harness swaps in [`FaultVfs`],
//! which wraps the real disk and injects EIO, ENOSPC, short/torn writes,
//! fsync-then-crash lies, and bit flips on a deterministic, seedable
//! schedule — the storage counterpart of `netsim/fault.rs`: a plan is a
//! pure function of its event list and the per-class operation counter, so
//! a trial is reproducible from its seed.
//!
//! [`FaultVfs`] models the page cache explicitly: writes land in a pending
//! buffer per file and only reach the real disk on fsync. That makes two
//! failure modes honest that a passthrough cannot express: a *fsync lie*
//! (sync acknowledges but leaves the pending bytes in memory) and a *power
//! cut* ([`FaultVfs::power_cut`]: every unflushed byte is dropped and all
//! further operations fail), which together reproduce the
//! fsync-then-crash data loss that recovery must survive.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Raw `ENOSPC` errno (Linux); [`is_enospc`] also matches the portable
/// `ErrorKind::StorageFull` so callers never string-match.
pub const ENOSPC: i32 = 28;

/// Is this error "device full"? The WAL's degraded mode keys off this.
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC) || e.kind() == io::ErrorKind::StorageFull
}

/// An open file handle. `io::Write` covers the append path (all storage
/// writes are sequential); the extra methods are the durability and
/// truncation points the storage layer needs.
pub trait VfsFile: Write + Send {
    /// fdatasync: commit data blocks and file size.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Full fsync (metadata included).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Position the write cursor at `pos` from the start.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

/// Filesystem operations the storage layer performs. Object-safe so a
/// handle is an `Arc<dyn Vfs>` threaded through the WAL, checkpoint, and
/// journal constructors.
pub trait Vfs: Send + Sync {
    /// Implementation name, for operator-facing status.
    fn kind(&self) -> &'static str;
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file read+write (reopen-for-append path).
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of directory entries.
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>>;
    /// fsync the directory itself (persist renames).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    fn exists(&self, path: &Path) -> bool;

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        String::from_utf8(self.read(path)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file is not UTF-8"))
    }
}

/// The process-default VFS: a `RealVfs` behind an `Arc`, for call sites
/// that do not thread an explicit handle.
pub fn real() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

// ------------------------------------------------------------------- real

/// Passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

struct RealFile(std::fs::File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for RealFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl Vfs for RealVfs {
    fn kind(&self) -> &'static str {
        "real"
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut out)?;
        Ok(out)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ------------------------------------------------------------------ faults

/// One storage fault kind. Write-path kinds fire on the write-operation
/// counter, [`DiskFaultKind::FsyncLie`] on the sync counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The write fails with EIO; nothing is persisted.
    Eio,
    /// The write fails with ENOSPC (device full).
    Enospc,
    /// Only a prefix of the buffer lands (short write), then EIO.
    TornWrite,
    /// fsync returns success but the pending bytes stay in "page cache" —
    /// lost at the next [`FaultVfs::power_cut`].
    FsyncLie,
    /// One bit of the written buffer is flipped (silent media corruption;
    /// the write itself succeeds).
    BitFlip,
}

impl DiskFaultKind {
    pub const ALL: [DiskFaultKind; 5] = [
        DiskFaultKind::Eio,
        DiskFaultKind::Enospc,
        DiskFaultKind::TornWrite,
        DiskFaultKind::FsyncLie,
        DiskFaultKind::BitFlip,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            DiskFaultKind::Eio => "eio",
            DiskFaultKind::Enospc => "enospc",
            DiskFaultKind::TornWrite => "torn",
            DiskFaultKind::FsyncLie => "lie",
            DiskFaultKind::BitFlip => "flip",
        }
    }

    pub fn parse(s: &str) -> Option<DiskFaultKind> {
        DiskFaultKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Does this kind key off the sync counter (vs the write counter)?
    fn on_sync(&self) -> bool {
        matches!(self, DiskFaultKind::FsyncLie)
    }
}

/// One timed fault: `kind` active while the relevant operation counter is
/// inside `[from_op, until_op)`, optionally scoped to files whose name
/// contains `path_contains` (empty = all files). Counter-indexed windows
/// are the storage analogue of `netsim/fault.rs`'s time-indexed ones: the
/// storage layer has no sim clock, but its operation sequence is
/// deterministic for a deterministic workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskFaultEvent {
    pub kind: DiskFaultKind,
    pub path_contains: String,
    pub from_op: u64,
    /// Exclusive end of the window.
    pub until_op: u64,
}

impl DiskFaultEvent {
    pub fn window(kind: DiskFaultKind, from_op: u64, until_op: u64) -> Self {
        assert!(from_op < until_op, "empty fault window");
        DiskFaultEvent { kind, path_contains: String::new(), from_op, until_op }
    }

    pub fn scoped(mut self, path_contains: &str) -> Self {
        self.path_contains = path_contains.to_string();
        self
    }

    fn active(&self, op: u64, name: &str) -> bool {
        self.from_op <= op
            && op < self.until_op
            && (self.path_contains.is_empty() || name.contains(&self.path_contains))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule of disk faults. Pure data: the same plan
/// against the same operation sequence injects the same faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    pub events: Vec<DiskFaultEvent>,
}

impl DiskFaultPlan {
    pub fn new(events: Vec<DiskFaultEvent>) -> Self {
        DiskFaultPlan { events }
    }

    /// Seeded chaos: for each requested kind, a few windows scattered over
    /// the early operation counter space (where a short trial actually
    /// lands). Deterministic in `(seed, kinds)`.
    pub fn chaos(seed: u64, kinds: &[DiskFaultKind]) -> DiskFaultPlan {
        let mut rng = seed ^ 0xD15C_FA17_ACE1_0000;
        let mut events = Vec::new();
        for &kind in kinds {
            let windows = 1 + (splitmix64(&mut rng) % 3);
            for _ in 0..windows {
                let (space, max_len) = if kind.on_sync() { (96, 4) } else { (3000, 48) };
                let from = splitmix64(&mut rng) % space;
                let len = 1 + splitmix64(&mut rng) % max_len;
                events.push(DiskFaultEvent::window(kind, from, from + len));
            }
        }
        DiskFaultPlan { events }
    }

    /// Parse a CLI spec `"<seed>:<kind>+<kind>+..."` (e.g. `42:eio+torn`)
    /// into a chaos plan. `"<seed>:all"` selects every kind.
    pub fn parse_spec(spec: &str) -> Option<DiskFaultPlan> {
        let (seed, kinds) = spec.split_once(':')?;
        let seed = seed.parse::<u64>().ok()?;
        let kinds: Vec<DiskFaultKind> = if kinds == "all" {
            DiskFaultKind::ALL.to_vec()
        } else {
            kinds.split('+').map(DiskFaultKind::parse).collect::<Option<Vec<_>>>()?
        };
        (!kinds.is_empty()).then(|| DiskFaultPlan::chaos(seed, &kinds))
    }
}

/// Injection counts, by kind (plus power-cut state), for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub eio: u64,
    pub enospc: u64,
    pub torn: u64,
    pub lies: u64,
    pub flips: u64,
    pub dead: bool,
}

impl FaultStats {
    pub fn total(&self) -> u64 {
        self.eio + self.enospc + self.torn + self.lies + self.flips
    }
}

#[derive(Default)]
struct FaultState {
    plan: DiskFaultPlan,
    writes: AtomicU64,
    syncs: AtomicU64,
    dead: AtomicBool,
    eio: AtomicU64,
    enospc: AtomicU64,
    torn: AtomicU64,
    lies: AtomicU64,
    flips: AtomicU64,
}

impl FaultState {
    fn fault_at(&self, op: u64, name: &str, on_sync: bool) -> Option<DiskFaultKind> {
        self.plan
            .events
            .iter()
            .find(|e| e.kind.on_sync() == on_sync && e.active(op, name))
            .map(|e| e.kind)
    }
}

fn eio() -> io::Error {
    io::Error::other("injected EIO")
}

fn dead_err() -> io::Error {
    io::Error::other("power cut: device gone")
}

/// Fault-injecting VFS over the real disk. See the module docs for the
/// page-cache model. Cloning shares the schedule and counters (the handle
/// threaded into the WAL and the one the harness keeps are the same
/// schedule).
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<FaultState>,
    inner: RealVfs,
}

impl FaultVfs {
    pub fn new(plan: DiskFaultPlan) -> FaultVfs {
        FaultVfs {
            state: Arc::new(FaultState { plan, ..FaultState::default() }),
            inner: RealVfs,
        }
    }

    /// Simulate power loss: every byte not yet flushed by an honest fsync
    /// is gone (pending buffers are dropped by their owners' writes
    /// failing), and all further operations fail. Lied-about syncs lose
    /// their data here — that is the point of the lie.
    pub fn power_cut(&self) {
        self.state.dead.store(true, Ordering::SeqCst);
    }

    /// `(write_ops, sync_ops)` consumed so far. Fault windows are indexed
    /// by these counters; a harness can calibrate a window by running the
    /// workload's prefix against an empty plan first.
    pub fn ops(&self) -> (u64, u64) {
        (self.state.writes.load(Ordering::Relaxed), self.state.syncs.load(Ordering::Relaxed))
    }

    pub fn stats(&self) -> FaultStats {
        let s = &self.state;
        FaultStats {
            eio: s.eio.load(Ordering::Relaxed),
            enospc: s.enospc.load(Ordering::Relaxed),
            torn: s.torn.load(Ordering::Relaxed),
            lies: s.lies.load(Ordering::Relaxed),
            flips: s.flips.load(Ordering::Relaxed),
            dead: s.dead.load(Ordering::Relaxed),
        }
    }

    fn check_dead(&self) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            Err(dead_err())
        } else {
            Ok(())
        }
    }
}

/// Write-back file handle: `pending` is the page cache, the inner file is
/// the platter. All storage-layer writes are sequential appends (after an
/// optional truncate+seek on reopen), so the pending buffer is a tail.
struct FaultFile {
    state: Arc<FaultState>,
    real: Box<dyn VfsFile>,
    name: String,
    pending: Vec<u8>,
}

impl FaultFile {
    fn flush_pending(&mut self) -> io::Result<()> {
        if !self.pending.is_empty() {
            self.real.write_all(&self.pending)?;
            self.pending.clear();
        }
        Ok(())
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(dead_err());
        }
        let op = self.state.writes.fetch_add(1, Ordering::Relaxed);
        match self.state.fault_at(op, &self.name, false) {
            Some(DiskFaultKind::Eio) => {
                self.state.eio.fetch_add(1, Ordering::Relaxed);
                Err(eio())
            }
            Some(DiskFaultKind::Enospc) => {
                self.state.enospc.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::from_raw_os_error(ENOSPC))
            }
            Some(DiskFaultKind::TornWrite) => {
                // Half the buffer lands, then the device errors: the frame
                // under construction is torn mid-payload.
                self.state.torn.fetch_add(1, Ordering::Relaxed);
                self.pending.extend_from_slice(&buf[..buf.len() / 2]);
                Err(eio())
            }
            Some(DiskFaultKind::BitFlip) => {
                self.state.flips.fetch_add(1, Ordering::Relaxed);
                let mut corrupt = buf.to_vec();
                if !corrupt.is_empty() {
                    // Deterministic victim bit derived from the op counter.
                    let mut h = op ^ 0xB17F_11B5;
                    let r = splitmix64(&mut h);
                    let byte = (r % corrupt.len() as u64) as usize;
                    corrupt[byte] ^= 1 << ((r >> 32) % 8);
                }
                self.pending.extend_from_slice(&corrupt);
                Ok(buf.len())
            }
            Some(DiskFaultKind::FsyncLie) | None => {
                self.pending.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Page-cache model: data moves to the platter on fsync, not flush.
        Ok(())
    }
}

impl VfsFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(dead_err());
        }
        let op = self.state.syncs.fetch_add(1, Ordering::Relaxed);
        if self.state.fault_at(op, &self.name, true) == Some(DiskFaultKind::FsyncLie) {
            self.state.lies.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.flush_pending()?;
        self.real.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.check_len_dead()?;
        self.pending.clear();
        self.real.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.real.seek_to(pos)
    }
}

impl FaultFile {
    fn check_len_dead(&self) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            Err(dead_err())
        } else {
            Ok(())
        }
    }
}

impl Drop for FaultFile {
    fn drop(&mut self) {
        // A dropped handle with pending bytes behaves like the OS flushing
        // the page cache in the background — unless the power is out.
        if !self.state.dead.load(Ordering::Relaxed) {
            let _ = self.flush_pending();
        }
    }
}

fn file_name(path: &Path) -> String {
    path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string()
}

impl Vfs for FaultVfs {
    fn kind(&self) -> &'static str {
        "fault-injecting"
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_dead()?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            real: self.inner.create(path)?,
            name: file_name(path),
            pending: Vec::new(),
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_dead()?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            real: self.inner.open_rw(path)?,
            name: file_name(path),
            pending: Vec::new(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_dead()?;
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_dead()?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_dead()?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_dead()?;
        self.inner.create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_dead()?;
        self.inner.remove_dir_all(path)
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        self.check_dead()?;
        self.inner.read_dir_names(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(dead_err());
        }
        // Directory fsync is subject to lies like any other sync.
        let op = self.state.syncs.fetch_add(1, Ordering::Relaxed);
        if self.state.fault_at(op, &file_name(path), true) == Some(DiskFaultKind::FsyncLie) {
            self.state.lies.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("manic-vfs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn real_vfs_roundtrip() {
        let v = RealVfs;
        let path = tmp("real.bin");
        let mut f = v.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(v.read(&path).unwrap(), b"hello");
        let renamed = tmp("real2.bin");
        v.rename(&path, &renamed).unwrap();
        assert!(!v.exists(&path) && v.exists(&renamed));
        v.remove_file(&renamed).unwrap();
    }

    #[test]
    fn chaos_is_deterministic_and_spec_parses() {
        let a = DiskFaultPlan::chaos(9, &DiskFaultKind::ALL);
        let b = DiskFaultPlan::chaos(9, &DiskFaultKind::ALL);
        assert_eq!(a, b);
        assert_ne!(a, DiskFaultPlan::chaos(10, &DiskFaultKind::ALL));
        assert!(!a.events.is_empty());
        assert_eq!(DiskFaultPlan::parse_spec("9:all"), Some(a));
        assert_eq!(
            DiskFaultPlan::parse_spec("3:eio+flip"),
            Some(DiskFaultPlan::chaos(3, &[DiskFaultKind::Eio, DiskFaultKind::BitFlip]))
        );
        assert_eq!(DiskFaultPlan::parse_spec("x:eio"), None);
        assert_eq!(DiskFaultPlan::parse_spec("3:bogus"), None);
        assert_eq!(DiskFaultPlan::parse_spec("3:"), None);
    }

    #[test]
    fn pending_writes_survive_only_honest_syncs() {
        // Sync op 1 (the second sync) lies.
        let plan = DiskFaultPlan::new(vec![DiskFaultEvent::window(DiskFaultKind::FsyncLie, 1, 2)]);
        let v = FaultVfs::new(plan);
        let path = tmp("lie.bin");
        let mut f = v.create(&path).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap(); // honest
        f.write_all(b" lost").unwrap();
        f.sync_data().unwrap(); // lie: acknowledged, not persisted
        v.power_cut();
        drop(f); // power is out: pending bytes must NOT flush
        assert_eq!(v.stats().lies, 1);
        assert!(v.stats().dead);
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_and_eio_windows_fire_and_count() {
        let plan = DiskFaultPlan::new(vec![
            DiskFaultEvent::window(DiskFaultKind::Enospc, 1, 2),
            DiskFaultEvent::window(DiskFaultKind::Eio, 2, 3),
        ]);
        let v = FaultVfs::new(plan);
        let path = tmp("enospc.bin");
        let mut f = v.create(&path).unwrap();
        f.write_all(b"ok").unwrap(); // op 0
        let e = f.write(b"full").unwrap_err(); // op 1
        assert!(is_enospc(&e));
        assert!(f.write(b"io").is_err()); // op 2
        f.write_all(b"ok2").unwrap(); // op 3: window passed
        f.sync_data().unwrap();
        drop(f);
        let s = v.stats();
        assert_eq!((s.enospc, s.eio), (1, 1));
        assert_eq!(std::fs::read(&path).unwrap(), b"okok2");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let plan = DiskFaultPlan::new(vec![DiskFaultEvent::window(DiskFaultKind::TornWrite, 0, 1)]);
        let v = FaultVfs::new(plan);
        let path = tmp("torn.bin");
        let mut f = v.create(&path).unwrap();
        assert!(f.write(b"abcdefgh").is_err());
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd", "half landed");
        assert_eq!(v.stats().torn, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_corrupts_silently() {
        let plan = DiskFaultPlan::new(vec![DiskFaultEvent::window(DiskFaultKind::BitFlip, 0, 1)]);
        let v = FaultVfs::new(plan);
        let path = tmp("flip.bin");
        let mut f = v.create(&path).unwrap();
        f.write_all(&[0u8; 16]).unwrap(); // "succeeds"
        f.sync_data().unwrap();
        drop(f);
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got.len(), 16);
        let ones: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        assert_eq!(v.stats().flips, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn path_scoped_events_skip_other_files() {
        let plan = DiskFaultPlan::new(vec![
            DiskFaultEvent::window(DiskFaultKind::Eio, 0, u64::MAX - 1).scoped("wal-")
        ]);
        let v = FaultVfs::new(plan);
        let safe = tmp("checkpoint.json");
        let mut f = v.create(&safe).unwrap();
        f.write_all(b"fine").unwrap();
        let hit = tmp("wal-0001.seg");
        let mut g = v.create(&hit).unwrap();
        assert!(g.write(b"boom").is_err());
        drop((f, g));
        let _ = std::fs::remove_file(&safe);
        let _ = std::fs::remove_file(&hit);
    }
}
