//! Monthly roll-ups: Figure 7 and Figure 8.

use crate::study::{Study, DAY_LINK_THRESHOLD};
use manic_core::LinkDays;
use manic_netsim::time::{day_index, month_label, month_start};
use manic_netsim::AsNumber;

/// One monthly series for an (AP, T&CP) pair.
#[derive(Debug, Clone)]
pub struct MonthlySeries {
    pub ap: AsNumber,
    pub tcp: AsNumber,
    /// `(month index, value)`, only months with observations.
    pub points: Vec<(u32, f64)>,
}

impl MonthlySeries {
    pub fn value_at(&self, month: u32) -> Option<f64> {
        self.points.iter().find(|(m, _)| *m == month).map(|&(_, v)| v)
    }

    /// Render as `Mar'16:12.3 Apr'16:...` for the experiment binaries.
    pub fn render(&self) -> String {
        self.points
            .iter()
            .map(|&(m, v)| format!("{}:{:.1}", month_label(m), v))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Month range helper: day bounds of month `m` clipped to the study.
fn month_days(study: &Study, m: u32) -> (i64, i64) {
    let (sfrom, sto) = study.day_range();
    let lo = day_index(month_start(m)).max(sfrom);
    let hi = day_index(month_start(m + 1)).min(sto);
    (lo, hi)
}

/// Figure 7: per month, the percentage of the pair's day-links classified
/// congested (4% bar).
pub fn fig7_series(
    study: &Study,
    ap: AsNumber,
    tcp: AsNumber,
    months: std::ops::Range<u32>,
) -> MonthlySeries {
    let links = study.links_between(ap, tcp);
    let mut points = Vec::new();
    for m in months {
        let (lo, hi) = month_days(study, m);
        if lo >= hi {
            continue;
        }
        let (c, o) = Study::day_link_counts(&links, lo, hi);
        if o > 0 {
            points.push((m, 100.0 * c as f64 / o as f64));
        }
    }
    MonthlySeries { ap, tcp, points }
}

/// Figure 8: "mean congestion between two networks over a month \[is\] the
/// average percentage congestion on all day-links between those networks
/// where any congestion was detected."
pub fn fig8_series(
    study: &Study,
    ap: AsNumber,
    tcp: AsNumber,
    months: std::ops::Range<u32>,
) -> MonthlySeries {
    let links = study.links_between(ap, tcp);
    let mut points = Vec::new();
    for m in months {
        let (lo, hi) = month_days(study, m);
        if lo >= hi {
            continue;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for l in &links {
            for &d in l.observed.range(lo..hi) {
                let pct = l.day_pct(d);
                if pct > 0.0 {
                    sum += 100.0 * pct;
                    n += 1;
                }
            }
        }
        if n > 0 {
            points.push((m, sum / n as f64));
        }
    }
    MonthlySeries { ap, tcp, points }
}

/// Congested day-link share of a set of pairs relative to all congested
/// day-links in the study (Table 4's caption: the nine T&CPs "represent 89%
/// of all observed congested day-links").
pub fn congested_share(study: &Study, host_aps: &[AsNumber], tcps: &[AsNumber]) -> f64 {
    let all: Vec<&LinkDays> = host_aps.iter().flat_map(|&ap| study.links_of(ap)).collect();
    let (from_day, to_day) = study.day_range();
    let total: usize = all
        .iter()
        .map(|l| {
            l.observed
                .range(from_day..to_day)
                .filter(|&&d| l.day_pct(d) >= DAY_LINK_THRESHOLD)
                .count()
        })
        .sum();
    let subset: usize = all
        .iter()
        .filter(|l| tcps.contains(&l.neighbor_as))
        .map(|l| {
            l.observed
                .range(from_day..to_day)
                .filter(|&&d| l.day_pct(d) >= DAY_LINK_THRESHOLD)
                .count()
        })
        .sum();
    if total == 0 {
        f64::NAN
    } else {
        100.0 * subset as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_bdrmap::infer::LinkRel;
    use std::collections::{BTreeMap, BTreeSet};

    /// A link congested (8 intervals/day) on the given absolute days.
    fn link(host: u32, neigh: u32, congested: &[i64], observed: std::ops::Range<i64>) -> LinkDays {
        LinkDays {
            host_as: AsNumber(host),
            neighbor_as: AsNumber(neigh),
            near_ip: manic_netsim::Ipv4(1),
            far_ip: manic_netsim::Ipv4(neigh),
            rel: LinkRel::Peer,
            via_ixp: false,
            vps: vec!["vp".into()],
            day_masks: congested.iter().map(|&d| (d, 0xFFu128)).collect::<BTreeMap<_, _>>(),
            observed: observed.collect::<BTreeSet<_>>(),
        }
    }

    #[test]
    fn fig7_monthly_percentages() {
        // Jan 2016 (days 0..31), congested for 15 of the first 30 days.
        let l = link(1, 9, &(0..15).collect::<Vec<_>>(), 0..60);
        let study = Study::new(vec![l], 0, 60 * 86_400);
        let s = fig7_series(&study, AsNumber(1), AsNumber(9), 0..2);
        let jan = s.value_at(0).unwrap();
        assert!((jan - 100.0 * 15.0 / 31.0).abs() < 1e-9, "jan={jan}");
        let feb = s.value_at(1).unwrap();
        assert_eq!(feb, 0.0);
    }

    #[test]
    fn fig8_means_only_congested_days() {
        // 10 congested days at 8/96 ≈ 8.33%; uncongested days excluded.
        let l = link(1, 9, &(0..10).collect::<Vec<_>>(), 0..31);
        let study = Study::new(vec![l], 0, 31 * 86_400);
        let s = fig8_series(&study, AsNumber(1), AsNumber(9), 0..1);
        let v = s.value_at(0).unwrap();
        assert!((v - 100.0 * 8.0 / 96.0).abs() < 1e-6, "v={v}");
    }

    #[test]
    fn share_of_congested_daylinks() {
        let a = link(1, 9, &(0..10).collect::<Vec<_>>(), 0..31);
        let b = link(1, 8, &(0..5).collect::<Vec<_>>(), 0..31);
        let study = Study::new(vec![a, b], 0, 31 * 86_400);
        let share = congested_share(&study, &[AsNumber(1)], &[AsNumber(9)]);
        assert!((share - 100.0 * 10.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn render_format() {
        let s = MonthlySeries { ap: AsNumber(1), tcp: AsNumber(2), points: vec![(2, 12.34)] };
        assert_eq!(s.render(), "Mar'16:12.3");
    }
}
