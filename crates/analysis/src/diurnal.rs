//! Figure 9: time-of-day and day-of-week structure of inferred congestion.
//!
//! "The top two histograms plot the fraction of elevated 15-minute periods
//! that fall in each hourly bin for all links measured from two VPs ...
//! using local time at the VP", with weekday/weekend split, against the
//! FCC's Measuring Broadband America peak-hours definition (7pm-11pm local).

use manic_core::VpLinkDays;
use manic_netsim::time::{day_start, is_weekend, SECS_PER_HOUR};
use manic_inference::autocorr::INTERVALS_PER_DAY;

/// Hour-of-day distribution of congested 15-minute periods.
#[derive(Debug, Clone)]
pub struct HourlyHistogram {
    /// Fraction of weekday congested periods per local hour (sums to 1).
    pub weekday: [f64; 24],
    /// Fraction of weekend congested periods per local hour (sums to 1).
    pub weekend: [f64; 24],
    pub weekday_periods: usize,
    pub weekend_periods: usize,
}

impl HourlyHistogram {
    /// Local hour with the largest weekday fraction (the pdf's mode).
    pub fn weekday_mode(&self) -> usize {
        (0..24).max_by(|&a, &b| self.weekday[a].total_cmp(&self.weekday[b])).unwrap()
    }

    /// Share of congested periods inside the FCC peak window (7pm-11pm
    /// local), weekdays.
    pub fn fcc_peak_share(&self) -> f64 {
        (19..23).map(|h| self.weekday[h]).sum()
    }

    /// §6.4's weekend claim, quantified: cosine similarity between the
    /// weekday and weekend hour-of-day distributions (1.0 = identical
    /// shape). The paper observes "weekends have similar congestion
    /// patterns as weekdays, in contrast to the FCC's classification of
    /// weekends as off-peak periods".
    pub fn weekend_similarity(&self) -> f64 {
        let dot: f64 = (0..24).map(|h| self.weekday[h] * self.weekend[h]).sum();
        let na: f64 = self.weekday.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = self.weekend.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            f64::NAN
        } else {
            dot / (na * nb)
        }
    }
}

/// Build the histogram over a set of per-VP link records, interpreting
/// interval timestamps in the VP's local timezone (fixed UTC offset).
pub fn hourly_histogram(records: &[&VpLinkDays], tz_offset_hours: i8) -> HourlyHistogram {
    let mut weekday = [0usize; 24];
    let mut weekend = [0usize; 24];
    for rec in records {
        for (&day, &mask) in &rec.day_masks {
            for iv in 0..INTERVALS_PER_DAY {
                if mask & (1u128 << iv) == 0 {
                    continue;
                }
                let utc = day_start(day) + iv as i64 * 900;
                let local = utc + tz_offset_hours as i64 * SECS_PER_HOUR;
                let hour = (local.rem_euclid(86_400) / SECS_PER_HOUR) as usize;
                if is_weekend(local) {
                    weekend[hour] += 1;
                } else {
                    weekday[hour] += 1;
                }
            }
        }
    }
    let wd_total: usize = weekday.iter().sum();
    let we_total: usize = weekend.iter().sum();
    let norm = |counts: [usize; 24], total: usize| {
        let mut out = [0.0; 24];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts) {
                *o = c as f64 / total as f64;
            }
        }
        out
    };
    HourlyHistogram {
        weekday: norm(weekday, wd_total),
        weekend: norm(weekend, we_total),
        weekday_periods: wd_total,
        weekend_periods: we_total,
    }
}

/// §6.4's deferred analysis, implemented: the same histogram keyed by each
/// *link's* local timezone rather than the VP's. The paper notes "each VP
/// measures interdomain links in other time zones as well as its own.
/// Without access to accurate router geolocation data, we defer an analysis
/// of this phenomenon to future work" — the simulator has that geolocation,
/// so the `tz_of_link` lookup supplies each record's true link offset.
pub fn hourly_histogram_link_time(
    records: &[&VpLinkDays],
    tz_of_link: impl Fn(&VpLinkDays) -> Option<i8>,
) -> HourlyHistogram {
    let mut weekday = [0usize; 24];
    let mut weekend = [0usize; 24];
    for rec in records {
        let Some(tz) = tz_of_link(rec) else { continue };
        for (&day, &mask) in &rec.day_masks {
            for iv in 0..INTERVALS_PER_DAY {
                if mask & (1u128 << iv) == 0 {
                    continue;
                }
                let local = day_start(day) + iv as i64 * 900 + tz as i64 * SECS_PER_HOUR;
                let hour = (local.rem_euclid(86_400) / SECS_PER_HOUR) as usize;
                if is_weekend(local) {
                    weekend[hour] += 1;
                } else {
                    weekday[hour] += 1;
                }
            }
        }
    }
    let wd_total: usize = weekday.iter().sum();
    let we_total: usize = weekend.iter().sum();
    let norm = |counts: [usize; 24], total: usize| {
        let mut out = [0.0; 24];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts) {
                *o = c as f64 / total as f64;
            }
        }
        out
    };
    HourlyHistogram {
        weekday: norm(weekday, wd_total),
        weekend: norm(weekend, we_total),
        weekday_periods: wd_total,
        weekend_periods: we_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_netsim::AsNumber;
    use std::collections::{BTreeMap, BTreeSet};

    /// Record congested 20:00-22:00 UTC on the given days.
    fn rec(days: &[i64]) -> VpLinkDays {
        let mut mask = 0u128;
        for iv in 80..88 {
            mask |= 1 << iv;
        }
        VpLinkDays {
            vp: "vp".into(),
            host_as: AsNumber(1),
            neighbor_as: AsNumber(2),
            near_ip: manic_netsim::Ipv4(1),
            far_ip: manic_netsim::Ipv4(2),
            day_masks: days.iter().map(|&d| (d, mask)).collect::<BTreeMap<_, _>>(),
            observed: days.iter().copied().collect::<BTreeSet<_>>(),
        }
    }

    #[test]
    fn mode_follows_timezone() {
        // Days 3..8 from the epoch: 2016-01-04 (Mon) .. 2016-01-08 (Fri).
        let r = rec(&[3, 4, 5, 6, 7]);
        let utc = hourly_histogram(&[&r], 0);
        assert!(utc.weekday_mode() == 20 || utc.weekday_mode() == 21);
        // At UTC-5 the same periods land at 15:00-17:00 local.
        let est = hourly_histogram(&[&r], -5);
        assert!(est.weekday_mode() == 15 || est.weekday_mode() == 16);
    }

    #[test]
    fn weekend_split_uses_local_days() {
        // Day 1 = 2016-01-02, a Saturday.
        let r = rec(&[1, 4]); // Saturday and Tuesday
        let h = hourly_histogram(&[&r], 0);
        assert_eq!(h.weekend_periods, 8);
        assert_eq!(h.weekday_periods, 8);
        assert!((h.weekday.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((h.weekend.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weekend_similarity_bounds() {
        // Same band on a weekday and a weekend day: identical shapes.
        let r = rec(&[1, 4]);
        let h = hourly_histogram(&[&r], 0);
        assert!((h.weekend_similarity() - 1.0).abs() < 1e-9);
        // Weekday-only congestion: weekend histogram empty -> NaN.
        let wd_only = rec(&[4]);
        let h2 = hourly_histogram(&[&wd_only], 0);
        assert!(h2.weekend_similarity().is_nan());
    }

    #[test]
    fn fcc_peak_share_counts_evening() {
        // Periods at 20:00-22:00 local are inside the FCC 19-23 window.
        let r = rec(&[4]);
        let h = hourly_histogram(&[&r], 0);
        assert!((h.fcc_peak_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn link_time_histogram_uses_per_link_offsets() {
        // Two links congested at the same UTC band but located in different
        // timezones: in link-local time both histograms peak at the same
        // hour; in any single fixed offset they cannot.
        let east = rec(&[4, 5]); // 20:00-22:00 UTC
        let mut west = rec(&[4, 5]);
        // Shift the west link's UTC band 3 hours later (23:00-01:00 UTC).
        west.day_masks = west
            .day_masks
            .iter()
            .map(|(&d, &m)| (d, m << 12))
            .collect();
        let tz = |r: &VpLinkDays| {
            if std::ptr::eq(r, &east) {
                Some(-5)
            } else {
                Some(-8)
            }
        };
        let h = hourly_histogram_link_time(&[&east, &west], tz);
        // East: 20-22 UTC at -5 = 15-17 local; west: 23-01 UTC at -8 = 15-17.
        assert_eq!(h.weekday_mode(), 15, "{:?}", h.weekday);
        let single = hourly_histogram(&[&east, &west], -5);
        assert_ne!(single.weekday_mode(), 15, "fixed offset smears the modes");
    }

    #[test]
    fn empty_records() {
        let h = hourly_histogram(&[], 0);
        assert_eq!(h.weekday_periods + h.weekend_periods, 0);
        assert!(h.weekday.iter().all(|&x| x == 0.0));
    }
}
