//! Table 3 (per-AP overview) and Table 4 (AP × T&CP matrix).

use crate::study::Study;
use manic_netsim::AsNumber;

/// "Congested peer" bar for Table 3's middle column: a T&CP counts as
/// congested when the pair's % congested day-links reaches this value (the
/// paper does not state its bar explicitly; this reproduces its counts).
pub const CONGESTED_PEER_PCT: f64 = 2.5;

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub network: String,
    /// Observed transit & content providers (qualifying links to ≥7-day
    /// observation).
    pub observed: usize,
    /// T&CPs whose pair-level congestion clears [`CONGESTED_PEER_PCT`].
    pub congested: usize,
    /// % congested day-links across all the AP's qualifying T&CP links.
    pub pct_congested_day_links: f64,
}

/// Compute Table 3. `aps` are `(asn, display name)` rows in table order;
/// `tcps` restricts to the transit/content population under study.
pub fn table3(study: &Study, aps: &[(AsNumber, &str)], tcps: &[AsNumber]) -> Vec<Table3Row> {
    aps.iter()
        .map(|&(ap, name)| {
            let links = study.links_of(ap);
            let tcp_links: Vec<_> = links
                .iter()
                .filter(|l| tcps.contains(&l.neighbor_as))
                .copied()
                .collect();
            let observed: std::collections::BTreeSet<AsNumber> =
                tcp_links.iter().map(|l| l.neighbor_as).collect();
            let congested = observed
                .iter()
                .filter(|&&tcp| {
                    let pair: Vec<_> =
                        tcp_links.iter().filter(|l| l.neighbor_as == tcp).copied().collect();
                    study.pct_congested(&pair) >= CONGESTED_PEER_PCT
                })
                .count();
            Table3Row {
                network: name.to_string(),
                observed: observed.len(),
                congested,
                pct_congested_day_links: study.pct_congested(&tcp_links),
            }
        })
        .collect()
}

/// A Table 4 cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// % congested day-links.
    Pct(f64),
    /// Congested day-links below 0.01% ("Z" in the paper).
    Zero,
    /// No observations ("-").
    None,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Pct(p) => write!(f, "{p:.2}"),
            Cell::Zero => write!(f, "Z"),
            Cell::None => write!(f, "-"),
        }
    }
}

/// The AP × T&CP matrix.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Column access providers `(asn, name)`.
    pub aps: Vec<(AsNumber, String)>,
    /// Row T&CPs `(asn, name)`.
    pub tcps: Vec<(AsNumber, String)>,
    /// `cells[tcp_row][ap_col]`.
    pub cells: Vec<Vec<Cell>>,
}

impl Table4 {
    pub fn cell(&self, tcp: AsNumber, ap: AsNumber) -> Cell {
        let r = self.tcps.iter().position(|(a, _)| *a == tcp).expect("tcp row");
        let c = self.aps.iter().position(|(a, _)| *a == ap).expect("ap col");
        self.cells[r][c]
    }
}

/// Compute Table 4 for the given row/column populations.
pub fn table4(
    study: &Study,
    aps: &[(AsNumber, &str)],
    tcps: &[(AsNumber, &str)],
) -> Table4 {
    let mut cells = Vec::with_capacity(tcps.len());
    for &(tcp, _) in tcps {
        let mut row = Vec::with_capacity(aps.len());
        for &(ap, _) in aps {
            let pair = study.links_between(ap, tcp);
            let cell = if pair.is_empty() {
                Cell::None
            } else {
                let pct = study.pct_congested(&pair);
                if pct.is_nan() {
                    Cell::None
                } else if pct < 0.01 {
                    Cell::Zero
                } else {
                    Cell::Pct(pct)
                }
            };
            row.push(cell);
        }
        cells.push(row);
    }
    Table4 {
        aps: aps.iter().map(|&(a, n)| (a, n.to_string())).collect(),
        tcps: tcps.iter().map(|&(a, n)| (a, n.to_string())).collect(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_bdrmap::infer::LinkRel;
    use manic_core::LinkDays;
    use std::collections::{BTreeMap, BTreeSet};

    fn link(host: u32, neigh: u32, congested_days: i64, observed_days: i64) -> LinkDays {
        let mask = 0xFFu128; // 8 intervals ≈ 8.3% of the day
        LinkDays {
            host_as: AsNumber(host),
            neighbor_as: AsNumber(neigh),
            near_ip: manic_netsim::Ipv4(host * 1000 + neigh),
            far_ip: manic_netsim::Ipv4(host * 1000 + neigh + 1),
            rel: LinkRel::Peer,
            via_ixp: false,
            vps: vec!["vp".into()],
            day_masks: (0..congested_days).map(|d| (d, mask)).collect::<BTreeMap<_, _>>(),
            observed: (0..observed_days).collect::<BTreeSet<_>>(),
        }
    }

    fn study() -> Study {
        Study::new(
            vec![
                link(1, 100, 50, 100), // AP1-TCP100: 50% congested
                link(1, 200, 0, 100),  // AP1-TCP200: clean
                link(2, 100, 1, 100),  // AP2-TCP100: 1% (below the peer bar)
            ],
            0,
            100 * 86_400,
        )
    }

    #[test]
    fn table3_counts() {
        let s = study();
        let rows = table3(
            &s,
            &[(AsNumber(1), "ap1"), (AsNumber(2), "ap2")],
            &[AsNumber(100), AsNumber(200)],
        );
        assert_eq!(rows[0].observed, 2);
        assert_eq!(rows[0].congested, 1);
        assert!((rows[0].pct_congested_day_links - 25.0).abs() < 1e-9);
        assert_eq!(rows[1].observed, 1);
        assert_eq!(rows[1].congested, 0);
    }

    #[test]
    fn table4_cells() {
        let s = study();
        let t = table4(
            &s,
            &[(AsNumber(1), "ap1"), (AsNumber(2), "ap2")],
            &[(AsNumber(100), "tcp100"), (AsNumber(200), "tcp200")],
        );
        assert_eq!(t.cell(AsNumber(100), AsNumber(1)), Cell::Pct(50.0));
        assert_eq!(t.cell(AsNumber(200), AsNumber(1)), Cell::Zero);
        assert_eq!(t.cell(AsNumber(200), AsNumber(2)), Cell::None);
        match t.cell(AsNumber(100), AsNumber(2)) {
            Cell::Pct(p) => assert!((p - 1.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cell_display() {
        assert_eq!(Cell::Pct(21.63).to_string(), "21.63");
        assert_eq!(Cell::Zero.to_string(), "Z");
        assert_eq!(Cell::None.to_string(), "-");
    }
}
