//! Evidence dossiers for manual inspection (§4.2).
//!
//! "To avoid making false inferences of congestion, we then manually
//! inspect the results of the algorithm in cases where it asserts evidence
//! of congestion, to confirm that the assertion is appropriate." This module
//! renders what that inspector looks at: the asserted recurring window, the
//! per-day estimates, and a sparkline of the far/near series around a
//! representative congested day.

use manic_core::LinkDays;
use manic_inference::autocorr::INTERVALS_PER_DAY;
use manic_netsim::time::{day_start, format_sim};
use std::fmt::Write as _;

/// Unicode sparkline of a dense series (None renders as space).
pub fn sparkline(series: &[Option<f64>]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let present: Vec<f64> = series.iter().flatten().copied().collect();
    if present.is_empty() {
        return " ".repeat(series.len());
    }
    let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    series
        .iter()
        .map(|v| match v {
            None => ' ',
            Some(x) => {
                let idx = (((x - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Render the inspection dossier for one asserted link.
///
/// `near`/`far` are dense 15-minute series aligned to `series_from` (any
/// range covering at least one congested day); pass empty slices to skip the
/// sparkline section.
pub fn evidence_report(
    link: &LinkDays,
    neighbor_name: &str,
    series_from: i64,
    near: &[Option<f64>],
    far: &[Option<f64>],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "link {} -> {} ({neighbor_name}), merged from {:?}",
        link.near_ip, link.far_ip, link.vps
    );
    let congested = link.congested_days(0.04);
    let _ = writeln!(
        out,
        "observed {} days; {} congested at the 4% bar",
        link.observed_days(),
        congested
    );

    // The asserted time-of-day band, from the union of day masks.
    let mut counts = [0usize; INTERVALS_PER_DAY];
    for mask in link.day_masks.values() {
        for (iv, c) in counts.iter_mut().enumerate() {
            if mask & (1u128 << iv) != 0 {
                *c += 1;
            }
        }
    }
    if let Some(peak) = counts.iter().copied().max().filter(|&c| c > 0) {
        let band: Vec<usize> = (0..INTERVALS_PER_DAY).filter(|&iv| counts[iv] * 2 >= peak).collect();
        if !band.is_empty() {
            // The band may wrap midnight (a 9pm ET peak sits at 02:00 UTC):
            // anchor it after the largest circular gap.
            let mut gap_at = 0usize; // band index after which the gap sits
            let mut gap_len = 0usize;
            for i in 0..band.len() {
                let next = band[(i + 1) % band.len()];
                let len = (next + INTERVALS_PER_DAY - band[i] - 1) % INTERVALS_PER_DAY;
                if len > gap_len {
                    gap_len = len;
                    gap_at = i;
                }
            }
            let start = band[(gap_at + 1) % band.len()];
            let end = (band[gap_at] + 1) % INTERVALS_PER_DAY;
            let _ = writeln!(
                out,
                "recurring band (UTC): {:02}:{:02} - {:02}:{:02} (peak interval recurs on {} days)",
                start * 15 / 60,
                start * 15 % 60,
                end * 15 / 60,
                end * 15 % 60,
                peak
            );
        }
    }

    // Worst day.
    if let Some((&day, _)) = link
        .day_masks
        .iter()
        .max_by_key(|(_, m)| m.count_ones())
    {
        let _ = writeln!(
            out,
            "worst day: {} at {:.1}% of the day congested",
            format_sim(day_start(day)),
            100.0 * link.day_pct(day)
        );
    }

    if !far.is_empty() {
        assert_eq!(near.len(), far.len(), "aligned series required");
        // Show the first fully-covered day.
        let day_bins = INTERVALS_PER_DAY;
        if far.len() >= day_bins {
            let _ = writeln!(out, "\nfirst day of the excerpt ({}):", format_sim(series_from));
            let _ = writeln!(out, "  far  {}", sparkline(&far[..day_bins]));
            let _ = writeln!(out, "  near {}", sparkline(&near[..day_bins]));
            let _ = writeln!(out, "       {}", hour_ruler());
        }
    }
    out
}

/// A 96-column ruler marking hours 0, 6, 12 and 18.
fn hour_ruler() -> String {
    let mut ruler = vec![' '; INTERVALS_PER_DAY];
    for (hour, label) in [(0usize, "0h"), (6, "6h"), (12, "12h"), (18, "18h")] {
        for (k, ch) in label.chars().enumerate() {
            ruler[hour * 4 + k] = ch;
        }
    }
    ruler.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_bdrmap::infer::LinkRel;
    use manic_netsim::AsNumber;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn sparkline_scales_and_handles_gaps() {
        let s = sparkline(&[Some(0.0), Some(0.5), None, Some(1.0)]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], ' ');
        assert_eq!(chars[3], '█');
        assert_eq!(sparkline(&[None, None]), "  ");
    }

    #[test]
    fn report_contains_key_facts() {
        let mut mask = 0u128;
        for iv in 84..92 {
            mask |= 1 << iv; // 21:00-23:00 UTC
        }
        let link = LinkDays {
            host_as: AsNumber(1),
            neighbor_as: AsNumber(2),
            near_ip: manic_netsim::Ipv4(1),
            far_ip: manic_netsim::Ipv4(2),
            rel: LinkRel::Peer,
            via_ixp: false,
            vps: vec!["vp-a".into()],
            day_masks: (0..20).map(|d| (d, mask)).collect::<BTreeMap<_, _>>(),
            observed: (0..25).collect::<BTreeSet<_>>(),
        };
        let far: Vec<Option<f64>> = (0..96)
            .map(|iv| Some(if (84..92).contains(&iv) { 55.0 } else { 20.0 }))
            .collect();
        let near = vec![Some(4.0); 96];
        let report = evidence_report(&link, "google", 0, &near, &far);
        assert!(report.contains("google"));
        assert!(report.contains("observed 25 days; 20 congested"));
        assert!(report.contains("recurring band (UTC): 21:00 - 23:00"));
        assert!(report.contains("worst day"));
        assert!(report.contains('█'));
    }

    #[test]
    fn report_without_series_skips_sparkline() {
        let link = LinkDays {
            host_as: AsNumber(1),
            neighbor_as: AsNumber(2),
            near_ip: manic_netsim::Ipv4(1),
            far_ip: manic_netsim::Ipv4(2),
            rel: LinkRel::Peer,
            via_ixp: false,
            vps: vec!["vp".into()],
            day_masks: BTreeMap::new(),
            observed: BTreeSet::new(),
        };
        let report = evidence_report(&link, "x", 0, &[], &[]);
        assert!(!report.contains('█'));
        assert!(report.contains("0 congested"));
    }
}
