//! Plain-text rendering for the experiment binaries.

/// Render an aligned monospace table. The first row is the header.
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Left-align the first column, right-align the rest.
            if i == 0 {
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Render a simple horizontal-bar chart of `(label, value)` pairs.
pub fn bar_chart(items: &[(String, f64)], max_width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bars = if max > 0.0 {
            ((v / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {v:.3}\n",
            "#".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["name".to_string(), "v".to_string()],
            vec!["a".to_string(), "1.5".to_string()],
            vec!["long-name".to_string(), "22".to_string()],
        ];
        let t = text_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn empty_table() {
        assert_eq!(text_table(&[]), "");
    }

    #[test]
    fn bars_scale() {
        let items = vec![("a".to_string(), 1.0), ("b".to_string(), 0.5)];
        let c = bar_chart(&items, 10);
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].matches('#').count() == 10);
        assert!(lines[1].matches('#').count() == 5);
    }
}
