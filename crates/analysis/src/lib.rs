//! Longitudinal analysis (§6): turning merged per-link day records into the
//! paper's tables and figures.
//!
//! * [`study`] — the study container: day-link classification at the 4%
//!   threshold, observation filtering (links seen ≥ 7 days), congestion
//!   window extraction for time-series shading;
//! * [`tables`] — Table 3 (per-access-ISP overview) and Table 4 (the
//!   AP × T&CP matrix with `Z` / `-` notation);
//! * [`temporal`] — Figure 7 (monthly % congested day-links per pair) and
//!   Figure 8 (monthly mean day-link congestion % to Google and Tata);
//! * [`diurnal`] — Figure 9 (hour-of-day distribution of recurring
//!   congestion periods, per VP local time, weekday vs weekend, FCC peak
//!   window);
//! * [`render`] — plain-text table/series rendering shared by the
//!   experiment binaries.

pub mod diurnal;
pub mod evidence;
pub mod render;
pub mod study;
pub mod tables;
pub mod temporal;

pub use diurnal::{hourly_histogram, hourly_histogram_link_time, HourlyHistogram};
pub use evidence::{evidence_report, sparkline};
pub use study::{Study, DAY_LINK_THRESHOLD, MIN_OBSERVED_DAYS};
pub use tables::{table3, table4, Table3Row, Table4};
pub use temporal::{fig7_series, fig8_series, MonthlySeries};
