//! Study container and day-link classification.

use manic_core::LinkDays;
use manic_netsim::time::{day_index, day_start, SimTime};
use manic_netsim::AsNumber;

/// §6's "significantly congested" bar: a day-link counts as congested when
/// the day-link congestion percentage exceeds 4% (≈ one hour per day). "This
/// restriction excluded from subsequent analysis 35.24% of the day-links
/// that showed any congestion."
pub const DAY_LINK_THRESHOLD: f64 = 0.04;

/// Links must be observed for at least seven days to enter the analysis
/// (§6: "limiting our analysis to links we observed for at least seven
/// days").
pub const MIN_OBSERVED_DAYS: usize = 7;

/// A longitudinal study over merged link records.
pub struct Study {
    pub links: Vec<LinkDays>,
    /// Study window (day-aligned simulation time).
    pub from: SimTime,
    pub to: SimTime,
}

impl Study {
    pub fn new(links: Vec<LinkDays>, from: SimTime, to: SimTime) -> Self {
        Study { links, from, to }
    }

    /// First/last day indices of the window.
    pub fn day_range(&self) -> (i64, i64) {
        (day_index(self.from), day_index(self.to))
    }

    /// Links of one access network (by host org membership), qualifying on
    /// observation length.
    pub fn links_of(&self, host: AsNumber) -> Vec<&LinkDays> {
        self.links
            .iter()
            .filter(|l| l.host_as == host && l.observed_days() >= MIN_OBSERVED_DAYS)
            .collect()
    }

    /// Qualifying links between one AP and one neighbor.
    pub fn links_between(&self, host: AsNumber, neighbor: AsNumber) -> Vec<&LinkDays> {
        self.links_of(host)
            .into_iter()
            .filter(|l| l.neighbor_as == neighbor)
            .collect()
    }

    /// (congested, observed) day-link counts over a day range for a set of
    /// links, at the 4% threshold.
    pub fn day_link_counts(links: &[&LinkDays], from_day: i64, to_day: i64) -> (usize, usize) {
        let mut congested = 0;
        let mut observed = 0;
        for l in links {
            for &d in l.observed.range(from_day..to_day) {
                observed += 1;
                if l.day_pct(d) >= DAY_LINK_THRESHOLD {
                    congested += 1;
                }
            }
        }
        (congested, observed)
    }

    /// % of congested day-links across a link set for the whole study.
    pub fn pct_congested(&self, links: &[&LinkDays]) -> f64 {
        let (from_day, to_day) = self.day_range();
        let (c, o) = Self::day_link_counts(links, from_day, to_day);
        if o == 0 {
            f64::NAN
        } else {
            100.0 * c as f64 / o as f64
        }
    }
}

/// §6's threshold-exclusion statistic: of the day-links that showed *any*
/// congestion, the fraction excluded by the 4% bar ("this restriction
/// excluded from subsequent analysis 35.24% of the day-links that showed any
/// congestion").
pub fn threshold_exclusion_pct(links: &[&LinkDays], from_day: i64, to_day: i64) -> f64 {
    let mut any = 0usize;
    let mut excluded = 0usize;
    for l in links {
        for (_d, &mask) in l.day_masks.range(from_day..to_day) {
            if mask == 0 {
                continue;
            }
            any += 1;
            if (mask.count_ones() as f64 / 96.0) < DAY_LINK_THRESHOLD {
                excluded += 1;
            }
        }
    }
    if any == 0 {
        f64::NAN
    } else {
        100.0 * excluded as f64 / any as f64
    }
}

/// Contiguous congested wall-clock windows of a link within `[from, to)`,
/// for shading Figure 3/6-style time series. Merges adjacent 15-minute
/// intervals (including across midnight).
pub fn congestion_windows(link: &LinkDays, from: SimTime, to: SimTime) -> Vec<(SimTime, SimTime)> {
    let mut out: Vec<(SimTime, SimTime)> = Vec::new();
    let first = day_index(from);
    let last = day_index(to - 1);
    for day in first..=last {
        let Some(&mask) = link.day_masks.get(&day) else { continue };
        for iv in 0..manic_inference::autocorr::INTERVALS_PER_DAY {
            if mask & (1u128 << iv) == 0 {
                continue;
            }
            let s = day_start(day) + (iv as i64) * 900;
            let e = s + 900;
            if e <= from || s >= to {
                continue;
            }
            match out.last_mut() {
                Some(lastw) if lastw.1 == s => lastw.1 = e,
                _ => out.push((s, e)),
            }
        }
    }
    out
}

/// Is instant `t` inside an inferred congestion interval of `link`?
pub fn is_congested_at(link: &LinkDays, t: SimTime) -> bool {
    let day = day_index(t);
    let iv = (t - day_start(day)) / 900;
    link.day_masks
        .get(&day)
        .map(|m| m & (1u128 << iv) != 0)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_bdrmap::infer::LinkRel;
    use std::collections::{BTreeMap, BTreeSet};

    fn link(host: u32, neigh: u32, days: &[(i64, u128)], observed: &[i64]) -> LinkDays {
        LinkDays {
            host_as: AsNumber(host),
            neighbor_as: AsNumber(neigh),
            near_ip: manic_netsim::Ipv4(1),
            far_ip: manic_netsim::Ipv4(2),
            rel: LinkRel::Peer,
            via_ixp: false,
            vps: vec!["vp".into()],
            day_masks: BTreeMap::from_iter(days.iter().copied()),
            observed: BTreeSet::from_iter(observed.iter().copied()),
        }
    }

    #[test]
    fn day_link_threshold() {
        // 4 intervals = 4.17% >= 4%: congested. 3 intervals = 3.1%: not.
        let l4 = link(1, 2, &[(10, 0b1111)], &[10]);
        let l3 = link(1, 2, &[(11, 0b111)], &[11]);
        assert_eq!(Study::day_link_counts(&[&l4], 0, 100), (1, 1));
        assert_eq!(Study::day_link_counts(&[&l3], 0, 100), (0, 1));
    }

    #[test]
    fn observation_filter() {
        let short = link(1, 2, &[], &[1, 2, 3]);
        let long = link(1, 2, &[], &(0..10).collect::<Vec<_>>());
        let study = Study::new(vec![short, long], 0, 100 * 86_400);
        assert_eq!(study.links_of(AsNumber(1)).len(), 1);
    }

    #[test]
    fn windows_merge_adjacent_intervals() {
        // Intervals 4,5,6 and 20 on day 0.
        let mask = (1u128 << 4) | (1 << 5) | (1 << 6) | (1 << 20);
        let l = link(1, 2, &[(0, mask)], &[0]);
        let w = congestion_windows(&l, 0, 86_400);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], (4 * 900, 7 * 900));
        assert_eq!(w[1], (20 * 900, 21 * 900));
        assert!(is_congested_at(&l, 5 * 900 + 10));
        assert!(!is_congested_at(&l, 10 * 900));
    }

    #[test]
    fn windows_cross_midnight() {
        let mask_last = 1u128 << 95;
        let mask_first = 1u128 << 0;
        let l = link(1, 2, &[(0, mask_last), (1, mask_first)], &[0, 1]);
        let w = congestion_windows(&l, 0, 2 * 86_400);
        assert_eq!(w.len(), 1, "{w:?}");
        assert_eq!(w[0], (95 * 900, 86_400 + 900));
    }

    #[test]
    fn pct_congested_basic() {
        // 10 observed days, 5 congested.
        let days: Vec<(i64, u128)> = (0..5).map(|d| (d, 0x3Fu128)).collect();
        let l = link(1, 2, &days, &(0..10).collect::<Vec<_>>());
        let study = Study::new(vec![l], 0, 10 * 86_400);
        let links = study.links_of(AsNumber(1));
        assert!((study.pct_congested(&links) - 50.0).abs() < 1e-9);
    }
}
