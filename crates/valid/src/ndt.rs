//! NDT-style throughput tests (§3.4, §5.3).
//!
//! An NDT test runs a 10-second download and upload against a server hosted
//! in some transit network. The critical subtlety reproduced here is path
//! asymmetry: *download* throughput is governed by the data path from the
//! server to the VP (the reverse of the traceroute the VP sees), so a test
//! can cross a congested link on the forward path while the data rides an
//! entirely different, uncongested interconnection — the paper's Link 2
//! (Comcast-Tata in Chicago, with data returning through Ashburn).

use crate::tcpmodel::{path_throughput_mbps, TcpModelConfig};
use manic_netsim::noise;
use manic_netsim::time::SimTime;
use manic_netsim::topo::Direction;
use manic_netsim::{AsNumber, Ipv4, LinkId, Network, RouterId};
use manic_probing::VpHandle;

/// An NDT measurement server (an M-Lab-like host in a transit network).
#[derive(Debug, Clone)]
pub struct NdtServer {
    pub name: String,
    pub asn: AsNumber,
    pub addr: Ipv4,
    /// Host router terminating the server address.
    pub router: RouterId,
}

/// One completed NDT test.
#[derive(Debug, Clone)]
pub struct NdtResult {
    pub t: SimTime,
    pub server: String,
    pub download_mbps: f64,
    pub upload_mbps: f64,
    pub rtt_ms: f64,
    /// Links crossed by the forward path (VP -> server), as a traceroute
    /// after the test would observe.
    pub forward_links: Vec<(LinkId, Direction)>,
    /// Links crossed by the download data path (server -> VP).
    pub reverse_links: Vec<(LinkId, Direction)>,
}

/// Run one NDT test at time `t`.
///
/// Returns `None` when either direction is unroutable.
pub fn run_ndt(
    net: &Network,
    vp: &VpHandle,
    server: &NdtServer,
    t: SimTime,
    flow_id: u16,
    cfg: &TcpModelConfig,
) -> Option<NdtResult> {
    let fwd = net.forward_path(vp.router, server.addr, flow_id, t);
    if fwd.is_empty() || !net.topo.terminates(fwd.last()?.router, server.addr) {
        return None;
    }
    let rev = net.forward_path(server.router, vp.addr, flow_id, t);
    if rev.is_empty() || rev.last()?.router != vp.router {
        return None;
    }
    let forward_links: Vec<(LinkId, Direction)> = fwd.iter().map(|h| (h.link, h.direction)).collect();
    let reverse_links: Vec<(LinkId, Direction)> = rev.iter().map(|h| (h.link, h.direction)).collect();

    // RTT: propagation both ways plus standing queues at test time.
    let mut rtt = 0.0;
    for &(l, d) in forward_links.iter().chain(&reverse_links) {
        rtt += net.topo.link(l).prop_delay_ms + net.link_state(l, d, t).queue_ms;
    }
    let rtt = rtt.max(0.5);

    // Download governed by the reverse (server->VP) data path; upload by the
    // forward path. A few percent of measurement noise on top.
    let jitter = |stream: u64| 1.0 + 0.04 * noise::signed(net.seed ^ 0x4D7, stream, t as u64);
    let download = path_throughput_mbps(net, &reverse_links, rtt, t, cfg)
        * jitter(flow_id as u64);
    let upload = path_throughput_mbps(net, &forward_links, rtt, t, cfg)
        * jitter(flow_id as u64 | 1 << 32);

    Some(NdtResult {
        t,
        server: server.name.clone(),
        download_mbps: download,
        upload_mbps: upload,
        rtt_ms: rtt,
        forward_links,
        reverse_links,
    })
}

/// Enumerate NDT servers in a world: one per transit network's host router
/// (M-Lab deploys inside transit providers).
pub fn servers_in(world: &manic_scenario::World) -> Vec<NdtServer> {
    use manic_scenario::asgraph::AsKind;
    world
        .graph
        .ases()
        .filter(|a| a.kind == AsKind::Transit)
        .map(|a| NdtServer {
            name: format!("ndt-{}", a.name),
            asn: a.asn,
            addr: world.host_addr(a.asn, 7),
            router: world.host_routers[&a.asn],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_netsim::time::{datetime_to_sim, Date};
    use manic_scenario::worlds::{toy, toy_asns};

    fn vp_of(w: &manic_scenario::World, name: &str) -> VpHandle {
        let vp = w.vp(name);
        VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
    }

    #[test]
    fn ndt_runs_against_transit_server() {
        let w = toy(1);
        let servers = servers_in(&w);
        assert_eq!(servers.len(), 1, "one transit AS in the toy world");
        let vp = vp_of(&w, "acme-nyc");
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let r = run_ndt(&w.net, &vp, &servers[0], quiet, 5, &TcpModelConfig::default()).unwrap();
        // Plan-capped by the VP's 20 Mbit/s access link.
        assert!(r.download_mbps > 15.0 && r.download_mbps < 25.0, "download {}", r.download_mbps);
        assert!(r.upload_mbps > 15.0);
        assert!(r.rtt_ms > 0.0);
        assert!(!r.forward_links.is_empty() && !r.reverse_links.is_empty());
    }

    #[test]
    fn congestion_reduces_download_not_upload() {
        // Server in CDNCO host space is behind the congested ACME-CDNCO
        // peering; the congested direction is CDNCO->ACME (download data).
        let w = toy(1);
        let server = NdtServer {
            name: "ndt-cdnco".into(),
            asn: toy_asns::CDNCO,
            addr: w.host_addr(toy_asns::CDNCO, 7),
            router: w.host_routers[&toy_asns::CDNCO],
        };
        let vp = vp_of(&w, "acme-nyc");
        let cfg = TcpModelConfig::default();
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0); // 9pm NYC
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let rp = run_ndt(&w.net, &vp, &server, peak, 5, &cfg).unwrap();
        let rq = run_ndt(&w.net, &vp, &server, quiet, 5, &cfg).unwrap();
        assert!(
            rp.download_mbps < rq.download_mbps / 2.0,
            "download collapses at peak: {} vs {}",
            rp.download_mbps,
            rq.download_mbps
        );
        // Upload rides the uncongested direction: it pays the inflated RTT
        // (slower window growth) but not the overload drops, so it degrades
        // far less than the download.
        assert!(
            rp.upload_mbps > 2.5 * rp.download_mbps,
            "upload much healthier than download: {} vs {}",
            rp.upload_mbps,
            rp.download_mbps
        );
        assert!(
            rp.upload_mbps > rq.upload_mbps * 0.1,
            "upload does not collapse: {} vs {}",
            rp.upload_mbps,
            rq.upload_mbps
        );
    }

    #[test]
    fn rtt_reflects_standing_queue() {
        let w = toy(1);
        let server = NdtServer {
            name: "ndt-cdnco".into(),
            asn: toy_asns::CDNCO,
            addr: w.host_addr(toy_asns::CDNCO, 7),
            router: w.host_routers[&toy_asns::CDNCO],
        };
        let vp = vp_of(&w, "acme-nyc");
        let cfg = TcpModelConfig::default();
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0);
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let rp = run_ndt(&w.net, &vp, &server, peak, 5, &cfg).unwrap();
        let rq = run_ndt(&w.net, &vp, &server, quiet, 5, &cfg).unwrap();
        assert!(rp.rtt_ms > rq.rtt_ms + 20.0, "{} vs {}", rp.rtt_ms, rq.rtt_ms);
    }
}
