//! Validation measurements (§3.4, §3.5, §5).
//!
//! The paper cross-checks TSLP congestion inferences against three
//! independent, more invasive measurements plus operator ground truth:
//!
//! * [`tcpmodel`] — a steady-state TCP bulk-transfer model shared by the
//!   NDT and YouTube emulations: throughput is the minimum of the
//!   bottleneck residual capacity along the *data* path, the Mathis
//!   loss-limited rate, and the receiver-window rate, discounted for
//!   slow-start over a short test;
//! * [`ndt`] — NDT-style download/upload throughput tests against servers
//!   hosted in transit networks, with the forward/reverse path distinction
//!   that produced the paper's Link-2 null result (§5.3, Table 2);
//! * [`youtube`] — YouTube-test-style streaming emulation: startup delay
//!   (time to buffer two seconds of media), ON-period throughput, and
//!   failure events (§5.2, Figures 4-5);
//! * [`lossval`] — the month-link loss-rate methodology of §5.1: far-end
//!   and localization binomial tests producing Table 1's three-way split;
//! * [`operator`] — the §5.4 audit: compare inferences with withheld link
//!   utilization (the only component allowed to read simulator ground
//!   truth).

pub mod lossval;
pub mod ndt;
pub mod operator;
pub mod tcpmodel;
pub mod youtube;

pub use lossval::{classify_month_links, LossValInput, Table1, Table1Class};
pub use ndt::{run_ndt, NdtResult, NdtServer};
pub use operator::{audit, AuditOutcome, AuditReport};
pub use tcpmodel::{path_throughput_mbps, TcpModelConfig};
pub use youtube::{run_youtube_test, YoutubeConfig, YoutubeResult};
