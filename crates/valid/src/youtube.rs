//! YouTube-test-style streaming emulation (§3.5, §5.2).
//!
//! The tool "first downloads the webpage of a given video to extract the
//! video's manifest ... then streams the video with the highest supported
//! bitrate", emulating playback by buffering and decoding. We reproduce the
//! three §5.2 metrics:
//!
//! * **ON-period throughput** — the instantaneous download rate during
//!   steady-state ON bursts, i.e. the TCP throughput of the cache→client
//!   path;
//! * **startup delay** — manifest fetch (two round trips) plus the time to
//!   buffer the first two seconds of media;
//! * **failure** — the client cannot sustain the bitrate (buffer depletes)
//!   or startup times out.

use crate::tcpmodel::{path_throughput_mbps, TcpModelConfig};
use manic_netsim::noise;
use manic_netsim::time::SimTime;
use manic_netsim::topo::Direction;
use manic_netsim::{Ipv4, LinkId, Network, RouterId};
use manic_probing::VpHandle;

/// Streaming test parameters.
#[derive(Debug, Clone, Copy)]
pub struct YoutubeConfig {
    /// Media bitrate, Mbit/s (the "highest supported bitrate").
    pub bitrate_mbps: f64,
    /// Seconds of media that must be buffered before playback starts.
    pub startup_buffer_s: f64,
    /// Startup deadline after which the test is recorded as failed.
    pub startup_timeout_s: f64,
    /// A stream fails when sustained throughput falls below
    /// `stall_margin * bitrate` (rebuffering events deplete the buffer).
    pub stall_margin: f64,
    pub tcp: TcpModelConfig,
}

impl Default for YoutubeConfig {
    fn default() -> Self {
        YoutubeConfig {
            bitrate_mbps: 4.0,
            startup_buffer_s: 2.0,
            startup_timeout_s: 15.0,
            stall_margin: 1.05,
            tcp: TcpModelConfig::default(),
        }
    }
}

/// One streaming test outcome.
#[derive(Debug, Clone)]
pub struct YoutubeResult {
    pub t: SimTime,
    pub cache_addr: Ipv4,
    /// Average instantaneous download rate during ON periods, Mbit/s.
    pub on_throughput_mbps: f64,
    /// Connection + first-two-seconds-of-media time, seconds.
    pub startup_delay_s: f64,
    /// Whether the stream failed (startup timeout or buffer starvation).
    pub failed: bool,
    /// Links on the forward path (used to map the test to an interdomain
    /// link via the post-test traceroute, §3.5).
    pub forward_links: Vec<(LinkId, Direction)>,
}

/// Run one streaming test from `vp` against a cache host.
pub fn run_youtube_test(
    net: &Network,
    vp: &VpHandle,
    cache_addr: Ipv4,
    cache_router: RouterId,
    t: SimTime,
    flow_id: u16,
    cfg: &YoutubeConfig,
) -> Option<YoutubeResult> {
    let fwd = net.forward_path(vp.router, cache_addr, flow_id, t);
    if fwd.is_empty() || !net.topo.terminates(fwd.last()?.router, cache_addr) {
        return None;
    }
    let rev = net.forward_path(cache_router, vp.addr, flow_id, t);
    if rev.is_empty() || rev.last()?.router != vp.router {
        return None;
    }
    let forward_links: Vec<(LinkId, Direction)> = fwd.iter().map(|h| (h.link, h.direction)).collect();
    let reverse_links: Vec<(LinkId, Direction)> = rev.iter().map(|h| (h.link, h.direction)).collect();

    let mut rtt = 0.0;
    for &(l, d) in forward_links.iter().chain(&reverse_links) {
        rtt += net.topo.link(l).prop_delay_ms + net.link_state(l, d, t).queue_ms;
    }
    let rtt = rtt.max(0.5);

    // Media rides the reverse (cache -> client) path.
    let jitter = 1.0 + 0.05 * noise::signed(net.seed ^ 0x77BE, flow_id as u64, t as u64);
    let tput = (path_throughput_mbps(net, &reverse_links, rtt, t, &cfg.tcp) * jitter).max(0.01);

    // Startup: manifest page (2 RTT: connect + GET) then buffer 2s of media.
    let media_bits = cfg.bitrate_mbps * cfg.startup_buffer_s;
    let startup = 2.0 * rtt / 1000.0 + media_bits / tput;

    // Failure: startup timeout, or sustained throughput below the bitrate
    // (with a small margin for container overhead).
    let failed = startup > cfg.startup_timeout_s || tput < cfg.stall_margin * cfg.bitrate_mbps;

    Some(YoutubeResult {
        t,
        cache_addr,
        on_throughput_mbps: tput,
        startup_delay_s: startup,
        failed,
        forward_links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_netsim::time::{datetime_to_sim, Date};
    use manic_scenario::worlds::{toy, toy_asns};

    fn vp_of(w: &manic_scenario::World, name: &str) -> VpHandle {
        let vp = w.vp(name);
        VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
    }

    fn run_at(w: &manic_scenario::World, t: SimTime) -> YoutubeResult {
        let vp = vp_of(w, "acme-nyc");
        run_youtube_test(
            &w.net,
            &vp,
            w.host_addr(toy_asns::CDNCO, 3),
            w.host_routers[&toy_asns::CDNCO],
            t,
            21,
            &YoutubeConfig::default(),
        )
        .expect("routable")
    }

    #[test]
    fn quiet_hours_stream_healthy() {
        let w = toy(1);
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let r = run_at(&w, quiet);
        assert!(!r.failed, "{r:?}");
        assert!(r.on_throughput_mbps > 10.0);
        assert!(r.startup_delay_s < 2.0, "startup {}", r.startup_delay_s);
    }

    #[test]
    fn peak_hours_stream_degrades() {
        let w = toy(1);
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0);
        let rq = run_at(&w, quiet);
        let rp = run_at(&w, peak);
        assert!(rp.on_throughput_mbps < rq.on_throughput_mbps / 2.0);
        assert!(rp.startup_delay_s > rq.startup_delay_s);
        assert!(!rq.failed);
    }

    #[test]
    fn high_bitrate_stream_fails_at_peak() {
        // An 8 Mbps stream cannot be sustained over the congested peering at
        // peak, but plays fine in quiet hours.
        let w = toy(1);
        let vp = {
            let v = w.vp("acme-nyc");
            VpHandle { name: v.name.clone(), router: v.router, addr: v.addr }
        };
        let cfg = YoutubeConfig { bitrate_mbps: 8.0, ..Default::default() };
        let run = |t: SimTime| {
            run_youtube_test(
                &w.net,
                &vp,
                w.host_addr(toy_asns::CDNCO, 3),
                w.host_routers[&toy_asns::CDNCO],
                t,
                21,
                &cfg,
            )
            .expect("routable")
        };
        let rq = run(datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0));
        let rp = run(datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0));
        assert!(!rq.failed, "{rq:?}");
        assert!(rp.failed, "{rp:?}");
    }

    #[test]
    fn forward_links_cross_the_peering() {
        let w = toy(1);
        let r = run_at(&w, 0);
        let gt = &w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        assert!(
            r.forward_links.iter().any(|&(l, _)| l == gt.link),
            "stream maps to the peering link"
        );
    }
}
