//! Steady-state TCP bulk-transfer throughput over a simulated path.
//!
//! The throughput of a TCP flow whose data crosses the given links is
//! modeled as the minimum of three classical limits:
//!
//! * **residual bottleneck capacity**: on a link at utilization `u`, a new
//!   flow can claim roughly the idle capacity, floored at a small fair
//!   share once the link saturates (competing flows back off too);
//! * **loss-limited (Mathis) rate**: `MSS/RTT · C/√p` with the end-to-end
//!   loss probability accumulated over the path's links — this is what
//!   collapses throughput across an overloaded interconnection;
//! * **receiver window**: `wnd / RTT`.
//!
//! A short test also pays slow-start: the first `log2(BDP/MSS)` round trips
//! deliver little data, which we discount from the average.

use manic_netsim::time::SimTime;
use manic_netsim::topo::Direction;
use manic_netsim::{LinkId, Network};

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpModelConfig {
    /// Maximum segment size, bytes.
    pub mss_bytes: f64,
    /// Receiver window, bytes.
    pub rwnd_bytes: f64,
    /// Mathis constant (≈ 1.22 for periodic loss).
    pub mathis_c: f64,
    /// Fair-share floor as a fraction of link capacity when saturated.
    pub fair_share_floor: f64,
    /// Test duration, seconds (for the slow-start discount).
    pub duration_s: f64,
    /// Effective-loss discount: tail-drop losses arrive in bursts that SACK
    /// recovers in one window, so the loss-event rate driving the Mathis
    /// formula is well below the raw packet-drop rate. Modern stacks see
    /// roughly a tenth of raw drops as loss events.
    pub burst_loss_discount: f64,
}

impl Default for TcpModelConfig {
    fn default() -> Self {
        TcpModelConfig {
            mss_bytes: 1460.0,
            rwnd_bytes: 4.0 * 1024.0 * 1024.0,
            mathis_c: 1.22,
            fair_share_floor: 0.03,
            duration_s: 10.0,
            burst_loss_discount: 0.1,
        }
    }
}

/// Throughput in Mbit/s of a bulk TCP flow whose data crosses `data_links`
/// at time `t`, with round-trip time `rtt_ms`.
pub fn path_throughput_mbps(
    net: &Network,
    data_links: &[(LinkId, Direction)],
    rtt_ms: f64,
    t: SimTime,
    cfg: &TcpModelConfig,
) -> f64 {
    assert!(rtt_ms > 0.0, "rtt must be positive");
    let rtt_s = rtt_ms / 1000.0;

    // Residual bottleneck and accumulated loss along the data path.
    let mut bottleneck_mbps = f64::INFINITY;
    let mut delivery = 1.0;
    for &(l, d) in data_links {
        let link = net.topo.link(l);
        let s = net.link_state(l, d, t);
        let residual = link.capacity_mbps * (1.0 - s.utilization).max(cfg.fair_share_floor);
        bottleneck_mbps = bottleneck_mbps.min(residual);
        delivery *= 1.0 - s.loss;
    }
    let p = ((1.0 - delivery) * cfg.burst_loss_discount).max(1e-6);

    // Loss-limited rate (Mathis et al. 1997).
    let mathis_mbps = cfg.mss_bytes * 8.0 / 1e6 * cfg.mathis_c / (rtt_s * p.sqrt());

    // Receiver-window rate.
    let rwnd_mbps = cfg.rwnd_bytes * 8.0 / 1e6 / rtt_s;

    let steady = bottleneck_mbps.min(mathis_mbps).min(rwnd_mbps).max(0.01);

    // Slow-start discount: roughly log2(BDP in segments) round trips ramping.
    let bdp_segments = (steady * 1e6 / 8.0 * rtt_s / cfg.mss_bytes).max(1.0);
    let rampup_s = bdp_segments.log2().max(0.0) * rtt_s;
    let discount = (1.0 - 0.5 * rampup_s / cfg.duration_s).clamp(0.5, 1.0);
    steady * discount
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_scenario::worlds::{toy, toy_asns};
    use manic_netsim::time::{datetime_to_sim, Date};

    fn data_path(w: &manic_scenario::World) -> Vec<(LinkId, Direction)> {
        // Data path = CDNCO host -> VP (the direction that congests).
        let vp = w.vp("acme-nyc");
        let host = w.host_routers[&toy_asns::CDNCO];
        w.net
            .forward_path(host, vp.addr, 3, 0)
            .iter()
            .map(|h| (h.link, h.direction))
            .collect()
    }

    #[test]
    fn uncongested_path_is_fast() {
        let w = toy(1);
        let links = data_path(&w);
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0); // 4am local
        let tput = path_throughput_mbps(&w.net, &links, 20.0, quiet, &TcpModelConfig::default());
        // The VP's 20 Mbit/s access plan is the bottleneck when the
        // interconnect is quiet.
        assert!(tput > 15.0, "quiet-hours throughput {tput}");
    }

    #[test]
    fn congested_path_collapses() {
        let w = toy(1);
        let links = data_path(&w);
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0); // 9pm NYC
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let cfg = TcpModelConfig::default();
        let t_peak = path_throughput_mbps(&w.net, &links, 60.0, peak, &cfg);
        let t_quiet = path_throughput_mbps(&w.net, &links, 20.0, quiet, &cfg);
        assert!(
            t_peak < t_quiet / 3.0,
            "congestion must collapse throughput: {t_peak} vs {t_quiet}"
        );
    }

    #[test]
    fn rwnd_caps_long_paths() {
        let w = toy(1);
        let links = data_path(&w);
        let quiet = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let cfg = TcpModelConfig { rwnd_bytes: 64.0 * 1024.0, ..Default::default() };
        let tput = path_throughput_mbps(&w.net, &links, 100.0, quiet, &cfg);
        // 64KB window at 100ms: ~5.2 Mbps.
        assert!((tput - 5.24).abs() < 1.0, "window-limited: {tput}");
    }

    #[test]
    fn longer_rtt_lowers_loss_limited_rate() {
        let w = toy(1);
        let links = data_path(&w);
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0);
        let cfg = TcpModelConfig::default();
        let short = path_throughput_mbps(&w.net, &links, 20.0, peak, &cfg);
        let long = path_throughput_mbps(&w.net, &links, 200.0, peak, &cfg);
        assert!(long < short, "{long} vs {short}");
    }
}
