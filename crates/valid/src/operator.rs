//! Operator ground-truth validation (§5.4).
//!
//! "The second operator provided us confidential access to utilization data
//! from their routers ... Of the 20 links, our method classified 10 as
//! showing recurring congestion and 10 as uncongested ... In each case, the
//! link utilization was consistent with our congestion inference."
//!
//! In the reproduction, the simulator *is* the operator: this module — and
//! only this module — reads `Network::link_state` ground truth and compares
//! it against the inference pipeline's day estimates. The inference side
//! never touches utilization.

use manic_inference::DayEstimate;
use manic_netsim::time::{SimTime, SECS_PER_DAY};
use manic_netsim::topo::Direction;
use manic_netsim::{LinkId, Network};

/// Verdict for one audited link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// Inferred congested, utilization reached capacity: true positive.
    TruePositive,
    /// Inferred uncongested, utilization stayed clear: true negative.
    TrueNegative,
    /// Inferred congested but the link never filled.
    FalsePositive,
    /// Missed congestion the operator data shows.
    FalseNegative,
}

/// Summary of one audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    pub outcomes: Vec<(String, AuditOutcome)>,
}

impl AuditReport {
    pub fn count(&self, o: AuditOutcome) -> usize {
        self.outcomes.iter().filter(|(_, x)| *x == o).count()
    }

    /// All inferences consistent with operator data?
    pub fn all_consistent(&self) -> bool {
        self.count(AuditOutcome::FalsePositive) == 0 && self.count(AuditOutcome::FalseNegative) == 0
    }
}

/// Fraction-of-day threshold on inferred congestion (the §6 "significantly
/// congested" bar: ≥4% of the day ≈ one hour).
pub const INFERRED_DAY_THRESHOLD: f64 = 0.04;
/// A day counts as operator-congested when utilization reaches capacity for
/// at least this many 15-minute intervals (matching the inference bar).
pub const GT_INTERVALS_THRESHOLD: usize = 4;

/// Does the operator's utilization data show recurring congestion on
/// `link`/`dir` over `[from, to)`? Checks, day by day, whether utilization
/// reached 100% for at least an hour, and requires several such days.
pub fn ground_truth_congested(
    net: &Network,
    link: LinkId,
    dir: Direction,
    from: SimTime,
    to: SimTime,
    min_days: usize,
) -> bool {
    let mut congested_days = 0;
    let mut day = from;
    while day < to {
        let mut hot = 0;
        for iv in 0..96 {
            let t = day + iv * 900 + 450;
            if net.link_state(link, dir, t).utilization >= 1.0 {
                hot += 1;
            }
        }
        if hot >= GT_INTERVALS_THRESHOLD {
            congested_days += 1;
            if congested_days >= min_days {
                return true;
            }
        }
        day += SECS_PER_DAY;
    }
    false
}

/// Audit a set of links: each entry is `(label, link, congested-direction,
/// merged day estimates over the audit window)`.
pub fn audit(
    net: &Network,
    links: &[(String, LinkId, Direction, Vec<DayEstimate>)],
    from: SimTime,
    to: SimTime,
    min_days: usize,
) -> AuditReport {
    let mut report = AuditReport::default();
    for (label, link, dir, days) in links {
        let inferred = days
            .iter()
            .filter(|d| d.congestion_pct >= INFERRED_DAY_THRESHOLD)
            .count()
            >= min_days;
        let actual = ground_truth_congested(net, *link, *dir, from, to, min_days);
        let outcome = match (inferred, actual) {
            (true, true) => AuditOutcome::TruePositive,
            (false, false) => AuditOutcome::TrueNegative,
            (true, false) => AuditOutcome::FalsePositive,
            (false, true) => AuditOutcome::FalseNegative,
        };
        report.outcomes.push((label.clone(), outcome));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_netsim::time::{date_to_sim, Date};
    use manic_scenario::worlds::{toy, toy_asns};

    #[test]
    fn ground_truth_sees_scripted_congestion() {
        let w = toy(1);
        let from = date_to_sim(Date::new(2016, 6, 1));
        let to = date_to_sim(Date::new(2016, 6, 15));
        let hot = w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let cold = w.links_between(toy_asns::ACME, toy_asns::VIDCO)[0];
        assert!(ground_truth_congested(
            &w.net,
            hot.link,
            hot.dir_toward(toy_asns::ACME),
            from,
            to,
            5
        ));
        assert!(!ground_truth_congested(
            &w.net,
            cold.link,
            cold.dir_toward(toy_asns::ACME),
            from,
            to,
            5
        ));
    }

    #[test]
    fn audit_classifies_quadrants() {
        let w = toy(1);
        let from = date_to_sim(Date::new(2016, 6, 1));
        let to = date_to_sim(Date::new(2016, 6, 15));
        let hot = w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let cold = w.links_between(toy_asns::ACME, toy_asns::VIDCO)[0];
        let congested_days: Vec<DayEstimate> = (0..14)
            .map(|day| DayEstimate { day, congested_intervals: 16, congestion_pct: 16.0 / 96.0 })
            .collect();
        let clean_days: Vec<DayEstimate> = (0..14)
            .map(|day| DayEstimate { day, congested_intervals: 0, congestion_pct: 0.0 })
            .collect();
        let links = vec![
            ("hot-correct".to_string(), hot.link, hot.dir_toward(toy_asns::ACME), congested_days.clone()),
            ("cold-correct".to_string(), cold.link, cold.dir_toward(toy_asns::ACME), clean_days.clone()),
            ("hot-missed".to_string(), hot.link, hot.dir_toward(toy_asns::ACME), clean_days),
            ("cold-overcalled".to_string(), cold.link, cold.dir_toward(toy_asns::ACME), congested_days),
        ];
        let report = audit(&w.net, &links, from, to, 5);
        assert_eq!(report.outcomes[0].1, AuditOutcome::TruePositive);
        assert_eq!(report.outcomes[1].1, AuditOutcome::TrueNegative);
        assert_eq!(report.outcomes[2].1, AuditOutcome::FalseNegative);
        assert_eq!(report.outcomes[3].1, AuditOutcome::FalsePositive);
        assert!(!report.all_consistent());
        assert_eq!(report.count(AuditOutcome::TruePositive), 1);
    }
}
