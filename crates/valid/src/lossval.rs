//! Loss-rate validation methodology (§5.1, Table 1).
//!
//! Data is organized into *month-links* — one month of loss measurements for
//! one interdomain link from one VP. After filtering to month-links that
//! were significantly congested (≥ one day with ≥ 4% congestion) and whose
//! far-end loss differed significantly between congested and uncongested
//! periods, each month-link is scored against two one-sided binomial
//! proportion tests (p < 0.05):
//!
//! * **far-end test** — is the far-end loss rate during congested periods
//!   higher than during uncongested periods?
//! * **localization test** — is the far-end loss rate during congested
//!   periods higher than the near-end loss rate?
//!
//! Table 1 of the paper reports 81% passing both, 8% passing only the
//! far-end test, and 11% whose far-end loss *decreased* under congestion
//! (explained by rate-limiting artifacts, border-mapping errors, and
//! latency-uncorrelated loss episodes).

use manic_stats::binomial::two_proportion_z_test;
use manic_stats::ttest::Tails;

/// Aggregated loss counts for one month-link.
#[derive(Debug, Clone)]
pub struct LossValInput {
    pub vp: String,
    pub link_label: String,
    /// Month index (since Jan 2016).
    pub month: u32,
    /// Did any day of this month reach ≥4% congestion (the §6 threshold)?
    pub significantly_congested: bool,
    /// Lost/sent probes to the far end during congested periods.
    pub far_congested: (u64, u64),
    /// Lost/sent to the far end during uncongested periods.
    pub far_uncongested: (u64, u64),
    /// Lost/sent to the near end during congested periods.
    pub near_congested: (u64, u64),
    /// Lost/sent to the near end during uncongested periods.
    pub near_uncongested: (u64, u64),
}

impl LossValInput {
    /// Overall far-end loss rate across the month (artifact detection).
    pub fn far_overall_rate(&self) -> f64 {
        let lost = self.far_congested.0 + self.far_uncongested.0;
        let sent = self.far_congested.1 + self.far_uncongested.1;
        if sent == 0 {
            0.0
        } else {
            lost as f64 / sent as f64
        }
    }

    /// Both ends responsive at least part of the month?
    pub fn both_ends_responsive(&self) -> bool {
        let far_sent = self.far_congested.1 + self.far_uncongested.1;
        let near_sent = self.near_congested.1 + self.near_uncongested.1;
        let far_lost = self.far_congested.0 + self.far_uncongested.0;
        let near_lost = self.near_congested.0 + self.near_uncongested.0;
        far_sent > 0 && near_sent > 0 && far_lost < far_sent && near_lost < near_sent
    }
}

/// Classification of one month-link (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Class {
    /// Far-end test and localization test both pass (row 1, 81%).
    FarHigherAndLocalized,
    /// Far-end test passes, localization fails (row 2, 8%).
    FarHigherOnly,
    /// Far-end loss did not increase under congestion (row 3, 11%).
    FarNotHigher,
}

/// The Table 1 summary.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// Month-links entering the analysis (significantly congested, both
    /// ends responsive).
    pub candidates: usize,
    /// Month-links with a statistically significant far-end difference.
    pub significant: usize,
    pub both: usize,
    pub far_only: usize,
    pub contradicting: usize,
    /// Month-links in the top rows with a suspicious always-high far loss
    /// (the 64-85% ICMP rate-limiting artifact the paper retains).
    pub suspicious_high_loss: usize,
    /// Per-month-link verdicts for drill-down.
    pub rows: Vec<(String, String, u32, Table1Class)>,
}

impl Table1 {
    pub fn pct_both(&self) -> f64 {
        100.0 * self.both as f64 / self.significant.max(1) as f64
    }
    pub fn pct_far_only(&self) -> f64 {
        100.0 * self.far_only as f64 / self.significant.max(1) as f64
    }
    pub fn pct_contradicting(&self) -> f64 {
        100.0 * self.contradicting as f64 / self.significant.max(1) as f64
    }
}

/// Run the §5.1 methodology over a set of month-links.
pub fn classify_month_links(inputs: &[LossValInput], alpha: f64) -> Table1 {
    let mut table = Table1::default();
    for ml in inputs {
        if !ml.significantly_congested || !ml.both_ends_responsive() {
            continue;
        }
        table.candidates += 1;

        // Keep only month-links with a significant far-end difference
        // (either direction), mirroring the paper's restriction.
        let Some(diff) = two_proportion_z_test(
            ml.far_congested.0,
            ml.far_congested.1,
            ml.far_uncongested.0,
            ml.far_uncongested.1,
            Tails::TwoSided,
        ) else {
            continue;
        };
        if !diff.significant(alpha) {
            continue;
        }
        table.significant += 1;

        // Far-end test: congested loss > uncongested loss.
        let far_test = two_proportion_z_test(
            ml.far_congested.0,
            ml.far_congested.1,
            ml.far_uncongested.0,
            ml.far_uncongested.1,
            Tails::Greater,
        )
        .map(|t| t.significant(alpha))
        .unwrap_or(false);

        // Localization test: congested far loss > congested near loss.
        let loc_test = two_proportion_z_test(
            ml.far_congested.0,
            ml.far_congested.1,
            ml.near_congested.0,
            ml.near_congested.1,
            Tails::Greater,
        )
        .map(|t| t.significant(alpha))
        .unwrap_or(false);

        let class = match (far_test, loc_test) {
            (true, true) => {
                table.both += 1;
                if ml.far_overall_rate() > 0.5 {
                    table.suspicious_high_loss += 1;
                }
                Table1Class::FarHigherAndLocalized
            }
            (true, false) => {
                table.far_only += 1;
                Table1Class::FarHigherOnly
            }
            (false, _) => {
                table.contradicting += 1;
                Table1Class::FarNotHigher
            }
        };
        table.rows.push((ml.vp.clone(), ml.link_label.clone(), ml.month, class));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ml(
        far_c: (u64, u64),
        far_u: (u64, u64),
        near_c: (u64, u64),
        congested: bool,
    ) -> LossValInput {
        LossValInput {
            vp: "vp".into(),
            link_label: "L".into(),
            month: 14,
            significantly_congested: congested,
            far_congested: far_c,
            far_uncongested: far_u,
            near_congested: near_c,
            near_uncongested: (5, 20_000),
        }
    }

    #[test]
    fn clean_congested_link_passes_both() {
        // 5% far loss when congested, 0.1% otherwise, near end quiet.
        let t = classify_month_links(&[ml((500, 10_000), (50, 50_000), (10, 10_000), true)], 0.05);
        assert_eq!(t.significant, 1);
        assert_eq!(t.both, 1);
        assert_eq!(t.rows[0].3, Table1Class::FarHigherAndLocalized);
        assert!((t.pct_both() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn near_loss_defeats_localization() {
        // Far loss rises under congestion but the near end is just as lossy:
        // the elevation cannot be attributed to the interdomain link.
        let t = classify_month_links(&[ml((500, 10_000), (50, 50_000), (520, 10_000), true)], 0.05);
        assert_eq!(t.far_only, 1);
        assert_eq!(t.both, 0);
    }

    #[test]
    fn decreasing_far_loss_contradicts() {
        let t = classify_month_links(&[ml((10, 10_000), (500, 50_000), (5, 10_000), true)], 0.05);
        assert_eq!(t.contradicting, 1);
    }

    #[test]
    fn insignificant_difference_filtered() {
        let t = classify_month_links(&[ml((51, 10_000), (250, 50_000), (5, 10_000), true)], 0.05);
        assert_eq!(t.candidates, 1);
        assert_eq!(t.significant, 0);
    }

    #[test]
    fn uncongested_month_links_excluded() {
        let t = classify_month_links(&[ml((500, 10_000), (50, 50_000), (10, 10_000), false)], 0.05);
        assert_eq!(t.candidates, 0);
    }

    #[test]
    fn unresponsive_end_excluded() {
        let mut bad = ml((10_000, 10_000), (50_000, 50_000), (10, 10_000), true);
        assert!(!bad.both_ends_responsive());
        bad.far_uncongested = (49_999, 50_000);
        assert!(bad.both_ends_responsive());
    }

    #[test]
    fn rate_limited_artifact_flagged_but_retained() {
        // 70% loss at all times, slightly higher under congestion: the paper
        // keeps these in row 1 but notes the suspicious level.
        let t = classify_month_links(&[ml((7_500, 10_000), (35_000, 50_000), (10, 10_000), true)], 0.05);
        assert_eq!(t.both, 1);
        assert_eq!(t.suspicious_high_loss, 1);
    }
}
