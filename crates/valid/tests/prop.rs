//! Property-based tests for the validation models.

use manic_netsim::time::datetime_to_sim;
use manic_netsim::time::Date;
use manic_netsim::topo::Direction;
use manic_netsim::LinkId;
use manic_scenario::worlds::{toy, toy_asns};
use manic_stats::ttest::Tails;
use manic_valid::lossval::{classify_month_links, LossValInput};
use manic_valid::tcpmodel::{path_throughput_mbps, TcpModelConfig};
use proptest::prelude::*;

fn data_path(w: &manic_scenario::World) -> Vec<(LinkId, Direction)> {
    let vp = w.vp("acme-nyc");
    let host = w.host_routers[&toy_asns::CDNCO];
    w.net
        .forward_path(host, vp.addr, 3, 0)
        .iter()
        .map(|h| (h.link, h.direction))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TCP throughput is positive, finite, and non-increasing in RTT.
    #[test]
    fn throughput_monotone_in_rtt(
        rtt1 in 1.0f64..500.0,
        rtt2 in 1.0f64..500.0,
        hour in 0i64..24,
    ) {
        let w = toy(1);
        let links = data_path(&w);
        let t = datetime_to_sim(Date::new(2016, 6, 7), hour as u8, 0, 0);
        let cfg = TcpModelConfig::default();
        let (lo, hi) = if rtt1 <= rtt2 { (rtt1, rtt2) } else { (rtt2, rtt1) };
        let fast = path_throughput_mbps(&w.net, &links, lo, t, &cfg);
        let slow = path_throughput_mbps(&w.net, &links, hi, t, &cfg);
        prop_assert!(fast.is_finite() && fast > 0.0);
        prop_assert!(slow <= fast * 1.0001, "rtt {lo}->{hi}: {fast} -> {slow}");
    }

    /// Longer tests amortize slow-start: throughput non-decreasing in
    /// duration.
    #[test]
    fn throughput_monotone_in_duration(d1 in 1.0f64..120.0, d2 in 1.0f64..120.0) {
        let w = toy(1);
        let links = data_path(&w);
        let t = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let short = path_throughput_mbps(&w.net, &links, 30.0, t, &TcpModelConfig { duration_s: lo, ..Default::default() });
        let long = path_throughput_mbps(&w.net, &links, 30.0, t, &TcpModelConfig { duration_s: hi, ..Default::default() });
        prop_assert!(long >= short * 0.9999);
    }

    /// The Table 1 classifier is exhaustive and consistent: every
    /// significant month-link lands in exactly one row, and the row
    /// percentages sum to 100%.
    #[test]
    fn table1_rows_partition_significant_monthlinks(
        inputs in prop::collection::vec(
            (0u64..200, 1_000u64..100_000, 0u64..200, 1_000u64..100_000, 0u64..200),
            1..12,
        ),
    ) {
        let mls: Vec<LossValInput> = inputs
            .iter()
            .enumerate()
            .map(|(i, &(fc, fct, fu, fut, nc))| LossValInput {
                vp: format!("vp{i}"),
                link_label: format!("L{i}"),
                month: 14,
                significantly_congested: true,
                far_congested: (fc.min(fct), fct),
                far_uncongested: (fu.min(fut), fut),
                near_congested: (nc.min(fct), fct),
                near_uncongested: (0, fut),
            })
            .collect();
        let t = classify_month_links(&mls, 0.05);
        prop_assert_eq!(t.both + t.far_only + t.contradicting, t.significant);
        prop_assert!(t.significant <= t.candidates);
        if t.significant > 0 {
            let total = t.pct_both() + t.pct_far_only() + t.pct_contradicting();
            prop_assert!((total - 100.0).abs() < 1e-6, "total {total}");
        }
        prop_assert_eq!(t.rows.len(), t.significant);
    }

    /// The classifier is insensitive to month-link order.
    #[test]
    fn table1_order_invariant(
        inputs in prop::collection::vec(
            (0u64..500, 10_000u64..50_000, 0u64..500),
            2..8,
        ),
    ) {
        let mls: Vec<LossValInput> = inputs
            .iter()
            .enumerate()
            .map(|(i, &(fc, n, nc))| LossValInput {
                vp: format!("vp{i}"),
                link_label: format!("L{i}"),
                month: 15,
                significantly_congested: true,
                far_congested: (fc.min(n), n),
                far_uncongested: (50, 5 * n),
                near_congested: (nc.min(n), n),
                near_uncongested: (10, 5 * n),
            })
            .collect();
        let fwd = classify_month_links(&mls, 0.05);
        let mut rev = mls.clone();
        rev.reverse();
        let bwd = classify_month_links(&rev, 0.05);
        prop_assert_eq!(fwd.both, bwd.both);
        prop_assert_eq!(fwd.far_only, bwd.far_only);
        prop_assert_eq!(fwd.contradicting, bwd.contradicting);
    }

    /// Sanity link between the stats layer and the classifier: a one-sided
    /// significance in the far-end test implies the two-sided filter also
    /// fired (alpha doubling).
    #[test]
    fn far_test_implies_twosided_filter(
        fc in 0u64..2_000, fu in 0u64..2_000,
    ) {
        let n = 100_000u64;
        let one = manic_stats::two_proportion_z_test(fc, n, fu, 5 * n, Tails::Greater);
        let two = manic_stats::two_proportion_z_test(fc, n, fu, 5 * n, Tails::TwoSided);
        if let (Some(o), Some(t)) = (one, two) {
            if o.significant(0.025) {
                prop_assert!(t.significant(0.05));
            }
        }
    }
}
