//! Background traffic demand models.
//!
//! The paper's object of study is *persistent* congestion: "a long-term
//! mismatch between installed capacity and actual traffic" (§1) that recurs
//! with diurnal demand (§4.2). The fluid layer models each link direction's
//! offered load as a deterministic function of time:
//!
//! ```text
//! demand(t) = base + amplitude · diurnal(local_hour) · month_scale(t) · weekend(t) + noise(t)
//! ```
//!
//! expressed as a fraction of link capacity. Utilization above the queue
//! model's onset produces a standing queue (elevated TSLP RTT); utilization
//! beyond capacity produces loss — exactly the observables §5 validates
//! against.

use crate::noise;
use crate::time::{self, SimTime};

/// A directional demand model: offered load as a fraction of capacity.
///
/// Implementations must be pure functions of time (same `t` → same value),
/// which is what keeps the whole simulation reproducible and cheap to query
/// out of order.
pub trait LoadModel: Send + Sync {
    /// Offered load / capacity at time `t`. May exceed 1.0 (overload).
    fn utilization(&self, t: SimTime) -> f64;
}

/// Constant utilization (useful for tests and for always-hot links).
#[derive(Debug, Clone, Copy)]
pub struct ConstantLoad(pub f64);

impl LoadModel for ConstantLoad {
    fn utilization(&self, _t: SimTime) -> f64 {
        self.0
    }
}

/// Per-month peak scaling, as `(month_index, scale)` change points.
///
/// The scale in effect at time `t` is the entry with the largest
/// `month_index <= month_index(t)`; before the first entry the scale is the
/// first entry's value. This is how scenarios script congestion that builds
/// up, peaks, and dissipates over the 22-month study (Figure 7's patterns).
#[derive(Debug, Clone, Default)]
pub struct MonthScale {
    /// Sorted by month index.
    entries: Vec<(u32, f64)>,
}

impl MonthScale {
    /// Flat scale of 1.0 forever.
    pub fn flat() -> Self {
        MonthScale { entries: vec![(0, 1.0)] }
    }

    pub fn new(mut entries: Vec<(u32, f64)>) -> Self {
        assert!(!entries.is_empty(), "month scale needs at least one entry");
        entries.sort_by_key(|&(m, _)| m);
        MonthScale { entries }
    }

    pub fn at(&self, t: SimTime) -> f64 {
        let m = time::month_index(t);
        let mut scale = self.entries[0].1;
        for &(start, s) in &self.entries {
            if start <= m {
                scale = s;
            } else {
                break;
            }
        }
        scale
    }
}

/// Diurnal demand: a smooth evening peak in the link's local timezone, a
/// shoulder through the working day, and a nightly trough, modulated by a
/// monthly trend and a weekend factor.
#[derive(Debug, Clone)]
pub struct DiurnalDemand {
    /// Quiet-hours utilization floor (fraction of capacity).
    pub base: f64,
    /// Additional utilization at the top of the evening peak.
    pub amplitude: f64,
    /// Local hour of the demand peak (e.g. 21.0 for 9pm).
    pub peak_hour: f64,
    /// Width (standard deviation, hours) of the evening peak.
    pub peak_width: f64,
    /// Fixed UTC offset of the demand population, hours.
    pub tz_offset_hours: i8,
    /// Multiplier applied to the amplitude on Saturdays/Sundays (local).
    pub weekend_factor: f64,
    /// Monthly amplitude trend.
    pub monthly: MonthScale,
    /// Uniform noise half-width added to utilization.
    pub noise_amp: f64,
    /// Noise stream seed (derive from the link id).
    pub noise_seed: u64,
}

impl DiurnalDemand {
    /// A benign profile that never congests a link: low base, mild peak.
    pub fn quiet(tz_offset_hours: i8, noise_seed: u64) -> Self {
        DiurnalDemand {
            base: 0.25,
            amplitude: 0.30,
            peak_hour: 21.0,
            peak_width: 3.0,
            tz_offset_hours,
            weekend_factor: 0.9,
            monthly: MonthScale::flat(),
            noise_amp: 0.02,
            noise_seed,
        }
    }

    /// Diurnal shape in [0, 1]: wrap-around Gaussian bump at `peak_hour` plus
    /// a small daytime shoulder. Public so scenario builders can solve for
    /// the amplitude that produces a target daily overload duration.
    pub fn shape(&self, local_hour: f64) -> f64 {
        // Circular distance to the peak.
        let mut d = (local_hour - self.peak_hour).abs();
        if d > 12.0 {
            d = 24.0 - d;
        }
        let evening = (-0.5 * (d / self.peak_width).powi(2)).exp();
        // Daytime shoulder: mild plateau from ~9am local.
        let mut ds = (local_hour - 14.0).abs();
        if ds > 12.0 {
            ds = 24.0 - ds;
        }
        let day = 0.35 * (-0.5 * (ds / 4.5).powi(2)).exp();
        // No clamp: the sum peaks slightly above 1, keeping the shape smooth
        // (and therefore invertible when scenarios solve for amplitudes).
        evening + day
    }
}

impl LoadModel for DiurnalDemand {
    fn utilization(&self, t: SimTime) -> f64 {
        let local = time::local_hour(t, self.tz_offset_hours);
        let local_t = t + self.tz_offset_hours as i64 * 3600;
        let weekend = if time::is_weekend(local_t) { self.weekend_factor } else { 1.0 };
        let amp = self.amplitude * self.monthly.at(t) * weekend;
        // Noise per 5-minute bin so repeated queries inside a bin agree.
        let bin = t.div_euclid(300) as u64;
        let n = self.noise_amp * noise::signed(self.noise_seed, 0xD1F0, bin);
        (self.base + amp * self.shape(local) + n).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{date_to_sim, datetime_to_sim, Date};

    fn demand(amplitude: f64) -> DiurnalDemand {
        DiurnalDemand {
            base: 0.3,
            amplitude,
            peak_hour: 21.0,
            peak_width: 3.0,
            tz_offset_hours: -5,
            weekend_factor: 1.0,
            monthly: MonthScale::flat(),
            noise_amp: 0.0,
            noise_seed: 1,
        }
    }

    #[test]
    fn peak_at_configured_local_hour() {
        let d = demand(0.6);
        // 2016-06-07 is a Tuesday. 21:00 local at UTC-5 == 02:00 UTC next day.
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0);
        let trough = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0); // 4am local
        assert!(d.utilization(peak) > 0.85);
        assert!(d.utilization(trough) < 0.45);
        assert!(d.utilization(peak) > d.utilization(trough) + 0.3);
    }

    #[test]
    fn weekend_factor_applies_on_local_weekend() {
        let mut d = demand(0.6);
        d.weekend_factor = 0.5;
        // Saturday 2016-06-11, 21:00 local (UTC-5) = Sunday 02:00 UTC.
        let sat_peak = datetime_to_sim(Date::new(2016, 6, 12), 2, 0, 0);
        let tue_peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0);
        assert!(d.utilization(sat_peak) < d.utilization(tue_peak) - 0.1);
    }

    #[test]
    fn month_scale_changes_peak() {
        let mut d = demand(0.6);
        d.monthly = MonthScale::new(vec![(0, 0.5), (6, 1.5)]);
        let june = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0); // month 5
        let august = datetime_to_sim(Date::new(2016, 8, 10), 2, 0, 0); // month 7
        assert!(d.utilization(august) > d.utilization(june) + 0.2);
    }

    #[test]
    fn month_scale_lookup() {
        let ms = MonthScale::new(vec![(3, 2.0), (0, 1.0), (10, 0.5)]);
        assert_eq!(ms.at(date_to_sim(Date::new(2016, 2, 1))), 1.0);
        assert_eq!(ms.at(date_to_sim(Date::new(2016, 5, 1))), 2.0);
        assert_eq!(ms.at(date_to_sim(Date::new(2017, 1, 1))), 0.5);
    }

    #[test]
    fn pure_function_of_time() {
        let d = DiurnalDemand::quiet(-8, 42);
        let t = datetime_to_sim(Date::new(2017, 3, 3), 12, 34, 56);
        assert_eq!(d.utilization(t), d.utilization(t));
    }

    #[test]
    fn never_negative() {
        let mut d = demand(0.1);
        d.base = 0.0;
        d.noise_amp = 0.5;
        d.noise_seed = 7;
        for i in 0..2000 {
            assert!(d.utilization(i * 300) >= 0.0);
        }
    }
}
