//! Router-level topology: routers, interfaces, point-to-point links.

use crate::ip::{Ipv4, Prefix};
use crate::queue::QueueModel;
use crate::traffic::LoadModel;
use std::collections::HashMap;
use std::sync::Arc;

/// Autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsNumber(pub u32);

impl std::fmt::Display for AsNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Router identifier (index into `Topology::routers`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId(pub u32);

/// Interface identifier (index into `Topology::ifaces`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

/// Link identifier (index into `Topology::links`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// What a link connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Backbone link inside one AS.
    Internal,
    /// Border link between two ASes — the objects the paper measures.
    Interdomain,
    /// Link between a host (VP or destination) and its first-hop router.
    Access,
}

/// A router (or end host — hosts are routers that terminate traffic).
#[derive(Debug, Clone)]
pub struct Router {
    pub id: RouterId,
    pub asn: AsNumber,
    /// Human-readable name, e.g. `comcast-bb-nyc-1`.
    pub name: String,
    /// Point of presence / metro tag, e.g. `nyc`.
    pub pop: String,
    /// Fixed UTC offset of the router's site, in hours.
    pub tz_offset_hours: i8,
    /// ICMP generation behaviour (slow path, rate limiting).
    pub icmp: crate::icmp::IcmpProfile,
    /// Interfaces owned by this router.
    pub ifaces: Vec<IfaceId>,
}

/// A numbered interface attached to a router, possibly on a link.
#[derive(Debug, Clone)]
pub struct Interface {
    pub id: IfaceId,
    pub router: RouterId,
    pub addr: Ipv4,
    /// The link this interface sits on, if connected.
    pub link: Option<LinkId>,
}

/// Direction across a link, named by the interface order in [`Link::ifaces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From `ifaces[0]`'s router toward `ifaces[1]`'s router.
    AtoB,
    /// From `ifaces[1]`'s router toward `ifaces[0]`'s router.
    BtoA,
}

/// A point-to-point link.
///
/// Background traffic is directional: on an access-ISP peering link the
/// inbound (content → eyeball) direction congests while the outbound one
/// stays loaded well under capacity. Each direction can therefore carry its
/// own [`LoadModel`].
#[derive(Clone)]
pub struct Link {
    pub id: LinkId,
    /// `[a, b]` interface pair.
    pub ifaces: [IfaceId; 2],
    pub kind: LinkKind,
    /// One-way propagation delay in milliseconds.
    pub prop_delay_ms: f64,
    /// Capacity in Mbit/s (used by the NDT throughput model).
    pub capacity_mbps: f64,
    /// Queueing behaviour when utilization approaches capacity.
    pub queue: QueueModel,
    /// Demand model for the a→b direction (None = idle).
    pub load_ab: Option<Arc<dyn LoadModel>>,
    /// Demand model for the b→a direction.
    pub load_ba: Option<Arc<dyn LoadModel>>,
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("ifaces", &self.ifaces)
            .field("kind", &self.kind)
            .field("prop_delay_ms", &self.prop_delay_ms)
            .field("capacity_mbps", &self.capacity_mbps)
            .finish_non_exhaustive()
    }
}

impl Link {
    /// The load model active when traversing the link in `dir`.
    pub fn load(&self, dir: Direction) -> Option<&Arc<dyn LoadModel>> {
        match dir {
            Direction::AtoB => self.load_ab.as_ref(),
            Direction::BtoA => self.load_ba.as_ref(),
        }
    }
}

/// The immutable router-level topology.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    pub routers: Vec<Router>,
    pub ifaces: Vec<Interface>,
    pub links: Vec<Link>,
    /// Address → interface reverse index.
    addr_index: HashMap<Ipv4, IfaceId>,
    /// Prefixes terminated by host routers: packets for these prefixes that
    /// reach the listed router are answered (ICMP echo) from the destination
    /// address itself.
    pub host_prefixes: Vec<(Prefix, RouterId)>,
}

impl Topology {
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a router; returns its id.
    pub fn add_router(
        &mut self,
        asn: AsNumber,
        name: impl Into<String>,
        pop: impl Into<String>,
        tz_offset_hours: i8,
        icmp: crate::icmp::IcmpProfile,
    ) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router {
            id,
            asn,
            name: name.into(),
            pop: pop.into(),
            tz_offset_hours,
            icmp,
            ifaces: Vec::new(),
        });
        id
    }

    /// Add an interface on `router` with address `addr`; returns its id.
    /// Panics if the address is already assigned (addresses are unique).
    pub fn add_iface(&mut self, router: RouterId, addr: Ipv4) -> IfaceId {
        assert!(
            !self.addr_index.contains_key(&addr),
            "duplicate interface address {addr}"
        );
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Interface { id, router, addr, link: None });
        self.routers[router.0 as usize].ifaces.push(id);
        self.addr_index.insert(addr, id);
        id
    }

    /// Connect two existing unconnected interfaces with a link.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &mut self,
        a: IfaceId,
        b: IfaceId,
        kind: LinkKind,
        prop_delay_ms: f64,
        capacity_mbps: f64,
        queue: QueueModel,
        load_ab: Option<Arc<dyn LoadModel>>,
        load_ba: Option<Arc<dyn LoadModel>>,
    ) -> LinkId {
        assert!(self.ifaces[a.0 as usize].link.is_none(), "iface {a:?} already linked");
        assert!(self.ifaces[b.0 as usize].link.is_none(), "iface {b:?} already linked");
        assert_ne!(
            self.ifaces[a.0 as usize].router, self.ifaces[b.0 as usize].router,
            "self-loop links are not allowed"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            ifaces: [a, b],
            kind,
            prop_delay_ms,
            capacity_mbps,
            queue,
            load_ab,
            load_ba,
        });
        self.ifaces[a.0 as usize].link = Some(id);
        self.ifaces[b.0 as usize].link = Some(id);
        id
    }

    /// Register a prefix whose addresses are answered by `router`.
    pub fn add_host_prefix(&mut self, prefix: Prefix, router: RouterId) {
        self.host_prefixes.push((prefix, router));
    }

    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    pub fn iface(&self, id: IfaceId) -> &Interface {
        &self.ifaces[id.0 as usize]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Interface holding `addr`, if any.
    pub fn iface_by_addr(&self, addr: Ipv4) -> Option<&Interface> {
        self.addr_index.get(&addr).map(|&i| self.iface(i))
    }

    /// The interface on the far side of `iface`'s link.
    pub fn peer_iface(&self, iface: IfaceId) -> Option<&Interface> {
        let link = self.iface(iface).link?;
        let [a, b] = self.link(link).ifaces;
        Some(self.iface(if a == iface { b } else { a }))
    }

    /// Direction of travel when leaving through `egress` on its link.
    pub fn link_direction(&self, link: LinkId, egress: IfaceId) -> Direction {
        if self.link(link).ifaces[0] == egress {
            Direction::AtoB
        } else {
            Direction::BtoA
        }
    }

    /// True when packets addressed to `dst` terminate at `router` (either a
    /// local interface address or a registered host prefix).
    pub fn terminates(&self, router: RouterId, dst: Ipv4) -> bool {
        if let Some(iface) = self.iface_by_addr(dst) {
            if iface.router == router {
                return true;
            }
        }
        self.host_prefixes
            .iter()
            .any(|(p, r)| *r == router && p.contains(dst))
    }

    /// AS that owns `addr` according to interface assignment; `None` for
    /// unassigned addresses (host-prefix space is resolved by the owner of
    /// the covering prefix in the scenario layer).
    pub fn addr_owner(&self, addr: Ipv4) -> Option<AsNumber> {
        self.iface_by_addr(addr).map(|i| self.router(i.router).asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpProfile;

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    fn tiny() -> (Topology, RouterId, RouterId, LinkId) {
        let mut t = Topology::new();
        let r1 = t.add_router(AsNumber(10), "r1", "nyc", -5, IcmpProfile::default());
        let r2 = t.add_router(AsNumber(20), "r2", "nyc", -5, IcmpProfile::default());
        let i1 = t.add_iface(r1, ip("10.0.0.1"));
        let i2 = t.add_iface(r2, ip("10.0.0.2"));
        let l = t.connect(i1, i2, LinkKind::Interdomain, 1.0, 10_000.0, QueueModel::default(), None, None);
        (t, r1, r2, l)
    }

    #[test]
    fn build_and_lookup() {
        let (t, r1, r2, l) = tiny();
        assert_eq!(t.iface_by_addr(ip("10.0.0.1")).unwrap().router, r1);
        assert_eq!(t.peer_iface(IfaceId(0)).unwrap().router, r2);
        assert_eq!(t.link(l).kind, LinkKind::Interdomain);
        assert_eq!(t.router(r1).ifaces.len(), 1);
    }

    #[test]
    fn directions() {
        let (t, _, _, l) = tiny();
        assert_eq!(t.link_direction(l, IfaceId(0)), Direction::AtoB);
        assert_eq!(t.link_direction(l, IfaceId(1)), Direction::BtoA);
    }

    #[test]
    fn terminates_iface_and_host_prefix() {
        let (mut t, r1, r2, _) = tiny();
        assert!(t.terminates(r1, ip("10.0.0.1")));
        assert!(!t.terminates(r1, ip("10.0.0.2")));
        t.add_host_prefix("10.5.0.0/24".parse().unwrap(), r2);
        assert!(t.terminates(r2, ip("10.5.0.77")));
        assert!(!t.terminates(r1, ip("10.5.0.77")));
    }

    #[test]
    #[should_panic(expected = "duplicate interface address")]
    fn duplicate_addr_rejected() {
        let (mut t, r1, _, _) = tiny();
        t.add_iface(r1, ip("10.0.0.1"));
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_connect_rejected() {
        let (mut t, r1, r2, _) = tiny();
        let i3 = t.add_iface(r1, ip("10.0.1.1"));
        let i4 = t.add_iface(r2, ip("10.0.1.2"));
        t.connect(i3, i4, LinkKind::Internal, 1.0, 1000.0, QueueModel::default(), None, None);
        // Reconnecting i3 must panic.
        let i5 = t.add_iface(r2, ip("10.0.2.2"));
        t.connect(i3, i5, LinkKind::Internal, 1.0, 1000.0, QueueModel::default(), None, None);
    }
}
