//! Deterministic router-level network simulator.
//!
//! This crate is the substrate that stands in for the live Internet in the
//! reproduction of *Inferring Persistent Interdomain Congestion* (SIGCOMM
//! 2018). The paper's measurement machinery — TSLP, bdrmap, loss probing,
//! traceroute — observes only a narrow slice of network behaviour:
//!
//! * which interface IPs answer TTL-limited probes along a path,
//! * round-trip latency to those interfaces, including standing queue delay
//!   on congested links,
//! * probe loss, and its localization to a link,
//! * confounders: ICMP slow-path generation, ICMP rate limiting, per-flow
//!   load balancing (ECMP), asymmetric return paths, routing changes.
//!
//! `manic-netsim` reproduces exactly those observables over an explicit
//! router-level topology with longest-prefix-match forwarding. It is a
//! *hybrid* simulator: probe packets are forwarded hop by hop (packet level),
//! while background traffic is a fluid model — every link carries a demand
//! profile from which utilization, standing queue delay, and loss probability
//! are derived as pure functions of time. Purity matters: any component may
//! ask for a link's state at any instant and get the same answer, which keeps
//! the 22-month longitudinal studies cheap and the whole system reproducible
//! from a single seed.
//!
//! Everything is deterministic. Randomness (probe jitter, loss draws, ICMP
//! slow paths) comes from counter-hashed noise seeded once per simulation.

pub mod fault;
pub mod fib;
pub mod forward;
pub mod icmp;
pub mod ip;
pub mod noise;
pub(crate) mod obs;
pub mod queue;
pub mod time;
pub mod topo;
pub mod traffic;

pub use fault::{FaultEvent, FaultKind, FaultSchedule, FaultScope};
pub use fib::{Fib, FibEntry};
pub use forward::{HopObservation, Network, PathScratch, ProbeKind, ProbeSpec, ProbeStatus, SimState};
pub use icmp::{IcmpProfile, RateLimiter};
pub use ip::{Ipv4, Prefix};
pub use queue::{LinkState, QueueModel};
pub use time::SimTime;
pub use topo::{AsNumber, IfaceId, Interface, Link, LinkId, LinkKind, Router, RouterId, Topology};
pub use traffic::{DiurnalDemand, LoadModel, MonthScale};
