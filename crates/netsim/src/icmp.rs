//! Router ICMP generation behaviour.
//!
//! §7 ("Router Queueing Behavior") notes two confounders the system must
//! coexist with: routers that generate ICMP in a slow path (inflating
//! observed latency without any congestion) and routers that rate-limit
//! ICMP responses (the 64-85%-loss artifacts in Table 1's discussion).
//! Both behaviours are modeled per router here.

use crate::time::SimTime;

/// Per-router ICMP response behaviour.
#[derive(Debug, Clone, Copy)]
pub struct IcmpProfile {
    /// Baseline time to generate a time-exceeded/echo reply, ms.
    pub base_ms: f64,
    /// Probability a response takes the slow path.
    pub slow_path_prob: f64,
    /// Extra delay when the slow path is taken, ms.
    pub slow_path_ms: f64,
    /// ICMP responses per second allowed; `None` = unlimited.
    pub rate_limit_pps: Option<f64>,
    /// Token bucket burst size when rate limited.
    pub rate_limit_burst: f64,
    /// Probability the router silently ignores a probe (unresponsive hop).
    pub unresponsive_prob: f64,
    /// Episodic unresponsiveness: on a random fraction of days the router
    /// drops most ICMP generation (maintenance, control-plane pressure).
    /// This produces the paper's §5.1 confounder — "episodes of high far-end
    /// loss uncorrelated with latency spikes".
    pub flaky: Option<FlakyProfile>,
}

/// Episodic unresponsiveness: on random days, the router sheds ICMP work
/// during a fixed maintenance-style window (off-peak in US timezones). This
/// creates far-end loss that is *uncorrelated with latency elevation* — one
/// of the confounders §5.1 attributes the contradicting Table 1 rows to.
#[derive(Debug, Clone, Copy)]
pub struct FlakyProfile {
    /// Probability that any given day is a bad day.
    pub day_prob: f64,
    /// ICMP drop probability inside the window on a bad day.
    pub drop_prob: f64,
    /// UTC hour the daily flaky window opens.
    pub window_start_hour: u8,
    /// UTC hour it closes (exclusive, no wrap).
    pub window_end_hour: u8,
}

impl FlakyProfile {
    /// Deterministic flakiness test for a router (pure function of time).
    pub fn is_flaky_now(&self, seed: u64, router_salt: u64, t: SimTime) -> bool {
        let hour = (t.rem_euclid(86_400) / 3600) as u8;
        if hour < self.window_start_hour || hour >= self.window_end_hour {
            return false;
        }
        let day = t.div_euclid(86_400) as u64;
        crate::noise::bernoulli(seed ^ 0xF1A6, router_salt, day, self.day_prob)
    }
}

impl Default for IcmpProfile {
    fn default() -> Self {
        IcmpProfile {
            base_ms: 0.3,
            slow_path_prob: 0.01,
            slow_path_ms: 30.0,
            rate_limit_pps: None,
            rate_limit_burst: 10.0,
            unresponsive_prob: 0.0,
            flaky: None,
        }
    }
}

impl IcmpProfile {
    /// A router that heavily rate-limits ICMP (the measurement-artifact case).
    pub fn rate_limited(pps: f64) -> Self {
        IcmpProfile { rate_limit_pps: Some(pps), ..Default::default() }
    }

    /// A router whose ICMP generation is always slow-path (e.g. a busy RP).
    pub fn slow(extra_ms: f64) -> Self {
        IcmpProfile { slow_path_prob: 0.6, slow_path_ms: extra_ms, ..Default::default() }
    }

    /// A router that never answers TTL-expired probes.
    pub fn silent() -> Self {
        IcmpProfile { unresponsive_prob: 1.0, ..Default::default() }
    }
}

/// Stateful token bucket for ICMP rate limiting.
///
/// Probes are executed in nondecreasing time order by the measurement
/// drivers, so a forward-only refill is sufficient; out-of-order queries are
/// clamped (the bucket never goes back in time).
#[derive(Debug, Clone, Copy)]
pub struct RateLimiter {
    tokens: f64,
    last: SimTime,
}

impl RateLimiter {
    pub fn new(burst: f64, at: SimTime) -> Self {
        RateLimiter { tokens: burst, last: at }
    }

    /// Checkpoint serialization: `(tokens, last)`.
    pub fn to_parts(&self) -> (f64, SimTime) {
        (self.tokens, self.last)
    }

    /// Rebuild from [`Self::to_parts`] output.
    pub fn from_parts(tokens: f64, last: SimTime) -> Self {
        RateLimiter { tokens, last }
    }

    /// Try to emit one ICMP response at time `t`; true = allowed.
    pub fn allow(&mut self, pps: f64, burst: f64, t: SimTime) -> bool {
        if t > self.last {
            self.tokens = (self.tokens + (t - self.last) as f64 * pps).min(burst);
            self.last = t;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_allows_burst_then_limits() {
        let mut rl = RateLimiter::new(3.0, 0);
        assert!(rl.allow(1.0, 3.0, 0));
        assert!(rl.allow(1.0, 3.0, 0));
        assert!(rl.allow(1.0, 3.0, 0));
        assert!(!rl.allow(1.0, 3.0, 0), "burst exhausted");
        // One second later one token refilled.
        assert!(rl.allow(1.0, 3.0, 1));
        assert!(!rl.allow(1.0, 3.0, 1));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut rl = RateLimiter::new(2.0, 0);
        // A long quiet period cannot bank more than the burst.
        assert!(rl.allow(10.0, 2.0, 1000));
        assert!(rl.allow(10.0, 2.0, 1000));
        assert!(!rl.allow(10.0, 2.0, 1000));
    }

    #[test]
    fn out_of_order_queries_do_not_refill() {
        let mut rl = RateLimiter::new(1.0, 100);
        assert!(rl.allow(1.0, 1.0, 100));
        // Earlier timestamp: no refill.
        assert!(!rl.allow(1.0, 1.0, 50));
    }

    #[test]
    fn fractional_rates_refill_over_multiple_seconds() {
        let mut rl = RateLimiter::new(1.0, 0);
        assert!(rl.allow(0.5, 1.0, 0));
        // 0.5 pps: after one second only half a token is back.
        assert!(!rl.allow(0.5, 1.0, 1));
        assert!(rl.allow(0.5, 1.0, 2), "full token after two seconds");
    }

    #[test]
    fn loss_probing_at_150pps_self_induces_icmp_loss() {
        // The §5.2 measurement artifact: loss probing runs at 150 pps
        // (vs TSLP's sparse probes), so a router limiting ICMP generation
        // to 50 pps answers only a third of the probes. The prober measures
        // ~67% "loss" on a path that drops nothing — apparent loss must be
        // attributed to the limiter, not congestion (Table 1's 64-85% rows).
        let pps = 50.0;
        let burst = 50.0;
        let mut rl = RateLimiter::new(burst, 0);
        let probe_rate = 150;
        let secs = 10;
        let mut answered = 0u32;
        for i in 0..probe_rate * secs {
            let t = (i / probe_rate) as SimTime;
            if rl.allow(pps, burst, t) {
                answered += 1;
            }
        }
        let loss = 1.0 - f64::from(answered) / f64::from(probe_rate * secs);
        assert!(
            (0.6..0.75).contains(&loss),
            "self-induced apparent loss should sit in the Table 1 artifact band, got {loss:.3}"
        );
        // The same router under TSLP's per-round load (6 probes per 300 s
        // round) never trips the limiter: the artifact is rate-dependent.
        let mut rl = RateLimiter::new(burst, 0);
        let mut tslp_answered = 0u32;
        for round in 0..100i64 {
            for _ in 0..6 {
                if rl.allow(pps, burst, round * 300) {
                    tslp_answered += 1;
                }
            }
        }
        assert_eq!(tslp_answered, 600, "sparse probing sees no limiter loss");
    }

    #[test]
    fn profiles() {
        let p = IcmpProfile::rate_limited(2.0);
        assert_eq!(p.rate_limit_pps, Some(2.0));
        assert_eq!(IcmpProfile::silent().unresponsive_prob, 1.0);
        assert!(IcmpProfile::slow(25.0).slow_path_prob > 0.5);
    }
}
