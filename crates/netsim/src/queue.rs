//! Utilization → queueing-delay / loss mapping.
//!
//! A congested interdomain link shows the TSLP signature the paper relies
//! on: during peak hours the router buffer in the overloaded direction fills,
//! adding a roughly constant standing-queue delay (bounded by the buffer
//! size) and dropping the excess demand. This module converts a fluid
//! utilization figure into `(queue delay, loss probability)`:
//!
//! * below `onset` utilization: negligible stochastic queueing;
//! * between `onset` and 1.0: partial queue that ramps toward the buffer;
//! * at or above 1.0: full standing queue (`buffer_ms`) and loss equal to
//!   the overload fraction `1 − 1/u` — the drops a FIFO tail-drop buffer
//!   imposes when offered load exceeds capacity.

use crate::noise;
use crate::time::SimTime;

/// Instantaneous state of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Offered load / capacity (can exceed 1).
    pub utilization: f64,
    /// Standing queue delay experienced by a packet crossing now, ms.
    pub queue_ms: f64,
    /// Probability that a packet crossing now is dropped.
    pub loss: f64,
}

impl LinkState {
    /// An idle link.
    pub fn idle() -> Self {
        LinkState { utilization: 0.0, queue_ms: 0.0, loss: 0.0 }
    }
}

/// Parameters of the queue model.
#[derive(Debug, Clone, Copy)]
pub struct QueueModel {
    /// Maximum standing-queue delay (buffer depth in time units), ms.
    /// Typical peering-router buffers add tens of milliseconds; the paper's
    /// Figure 3 shows ~30-50 ms of diurnal elevation.
    pub buffer_ms: f64,
    /// Utilization at which queueing delay becomes noticeable.
    pub onset: f64,
    /// Baseline loss floor (transient drops even when uncongested).
    pub base_loss: f64,
    /// Small random queueing jitter amplitude at low utilization, ms.
    pub jitter_ms: f64,
    /// Fraction of the raw overload (`1 - 1/u`) that manifests as packet
    /// loss. TCP senders back off against a full buffer, so a link whose
    /// *offered* demand exceeds capacity by 20% settles at ~100% utilization
    /// with a few percent loss, not 17% — the paper's Figure 3 shows 1-3.5%
    /// loss on a persistently congested link. 1.0 recovers the raw fluid
    /// drop rate (used by tests exercising the limit).
    pub overload_elasticity: f64,
}

impl Default for QueueModel {
    fn default() -> Self {
        QueueModel {
            buffer_ms: 40.0,
            onset: 0.90,
            base_loss: 1e-5,
            jitter_ms: 0.3,
            overload_elasticity: 0.2,
        }
    }
}

impl QueueModel {
    /// Map utilization to link state. `seed`/`stream` select the jitter noise
    /// stream (derive `stream` from the link id + direction); `t` indexes it.
    pub fn state(&self, utilization: f64, seed: u64, stream: u64, t: SimTime) -> LinkState {
        let u = utilization.max(0.0);
        // Jitter varies per 5-minute bin, like the demand noise.
        let bin = t.div_euclid(300) as u64;
        let jitter = self.jitter_ms * noise::uniform(seed, stream ^ 0x9E11, bin);
        let (queue_ms, loss) = if u < self.onset {
            (jitter, self.base_loss)
        } else if u < 1.0 {
            // Partial standing queue: ramp from jitter to ~60% of the buffer
            // as utilization moves from onset to 1.0 (M/M/1-flavored blowup
            // truncated by the buffer).
            let frac = (u - self.onset) / (1.0 - self.onset);
            (jitter + 0.6 * self.buffer_ms * frac * frac, self.base_loss)
        } else {
            // Overload: full buffer plus (TCP-moderated) overload drops.
            let overload_loss = (1.0 - 1.0 / u) * self.overload_elasticity;
            (
                self.buffer_ms * (0.9 + 0.1 * noise::uniform(seed, stream ^ 0x51AB, bin)),
                (self.base_loss + overload_loss).min(1.0),
            )
        };
        LinkState { utilization: u, queue_ms, loss }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(u: f64) -> LinkState {
        QueueModel::default().state(u, 1, 2, 0)
    }

    #[test]
    fn idle_link_has_tiny_delay_and_loss() {
        let s = st(0.3);
        assert!(s.queue_ms < 0.5);
        assert!(s.loss < 1e-3);
    }

    #[test]
    fn delay_monotone_in_utilization() {
        // Same time bin -> same jitter draw, so the deterministic part must
        // be monotone.
        let us = [0.2, 0.5, 0.85, 0.92, 0.97, 1.0, 1.2];
        let states: Vec<f64> = us.iter().map(|&u| st(u).queue_ms).collect();
        for w in states.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{states:?}");
        }
    }

    #[test]
    fn overload_fills_buffer_and_drops() {
        let q = QueueModel::default();
        let s = q.state(1.25, 1, 2, 0);
        assert!(s.queue_ms > 0.85 * q.buffer_ms);
        // (1 - 1/1.25) * 0.2 elasticity = 4% loss.
        assert!((s.loss - 0.04).abs() < 0.005, "loss={}", s.loss);
        // The raw fluid drop rate is recovered at elasticity 1.
        let raw = QueueModel { overload_elasticity: 1.0, ..q }.state(1.25, 1, 2, 0);
        assert!((raw.loss - 0.2).abs() < 0.01, "raw loss={}", raw.loss);
    }

    #[test]
    fn loss_capped_at_one() {
        let s = QueueModel::default().state(1e9, 1, 2, 0);
        assert!(s.loss <= 1.0);
    }

    #[test]
    fn deterministic_per_bin() {
        let q = QueueModel::default();
        // Same 5-minute bin -> identical state.
        assert_eq!(q.state(0.95, 7, 3, 100), q.state(0.95, 7, 3, 299));
        // Different bins may differ in jitter only.
        let a = q.state(0.5, 7, 3, 0);
        let b = q.state(0.5, 7, 3, 301);
        assert_eq!(a.loss, b.loss);
    }
}
