//! Packet forwarding: probe execution over the topology.
//!
//! This is the part of the substrate the measurement tools talk to. A probe
//! is forwarded hop by hop: each router performs a longest-prefix-match
//! lookup, picks an ECMP group member by flow hash, and the packet crosses
//! the link paying propagation plus the standing-queue delay of the link's
//! current direction-specific load (and a loss draw against its drop
//! probability). TTL expiry raises an ICMP time-exceeded from the expiring
//! router's *ingress* interface — the address TSLP and traceroute observe —
//! subject to that router's ICMP profile (slow path, rate limiting,
//! unresponsiveness). Replies are themselves routed hop by hop, so
//! asymmetric return paths and return-path congestion behave exactly as the
//! paper describes (§7).

use crate::fault::FaultSchedule;
use crate::fib::{ecmp_pick, Fib};
use crate::icmp::RateLimiter;
use crate::ip::Ipv4;
use crate::noise;
use crate::queue::LinkState;
use crate::time::SimTime;
use crate::topo::{Direction, LinkId, RouterId, Topology};
use std::collections::HashMap;

/// Maximum hops a packet may take before we declare a forwarding loop.
const MAX_HOPS: usize = 64;

/// Classifies the probe for bookkeeping (both are ICMP echoes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// TSLP / traceroute style TTL-limited probe.
    TtlLimited,
    /// Full-TTL echo (loss probing toward a far interface uses TTL-limited
    /// probes too; this is for completeness and host pings).
    Echo,
}

/// A probe to inject.
#[derive(Debug, Clone, Copy)]
pub struct ProbeSpec {
    /// Source host (a router that terminates traffic).
    pub src: RouterId,
    /// Source address (must belong to `src`).
    pub src_addr: Ipv4,
    pub dst: Ipv4,
    pub ttl: u8,
    /// Flow identifier (the ICMP checksum TSLP keeps constant, §3.1).
    pub flow_id: u16,
}

/// Outcome of a probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeStatus {
    /// TTL expired; ICMP time-exceeded received.
    TimeExceeded { from: Ipv4, rtt_ms: f64 },
    /// Destination answered.
    EchoReply { from: Ipv4, rtt_ms: f64 },
    /// Probe or reply lost (queue drop, rate limiting, unresponsive router).
    Lost,
    /// No route to the destination.
    Unroutable,
}

impl ProbeStatus {
    pub fn rtt(&self) -> Option<f64> {
        match *self {
            ProbeStatus::TimeExceeded { rtt_ms, .. } | ProbeStatus::EchoReply { rtt_ms, .. } => {
                Some(rtt_ms)
            }
            _ => None,
        }
    }

    pub fn responder(&self) -> Option<Ipv4> {
        match *self {
            ProbeStatus::TimeExceeded { from, .. } | ProbeStatus::EchoReply { from, .. } => {
                Some(from)
            }
            _ => None,
        }
    }
}

/// One hop of a deterministic path walk (no loss draws).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopObservation {
    pub router: RouterId,
    /// Ingress interface address at this router (what a traceroute sees).
    pub ingress_addr: Ipv4,
    pub link: LinkId,
    pub direction: Direction,
}

/// Reusable buffers for path walks. Owned by [`SimState`] so every
/// measurement driver gets an arena that lives as long as its probing state:
/// once the vectors reach their high-water mark, `forward_path_into` /
/// `record_route_into` stop allocating entirely (asserted by
/// `tests/alloc_lean.rs`). Deliberately excluded from checkpoint
/// serialization — scratch contents never outlive one call.
#[derive(Debug, Default)]
pub struct PathScratch {
    /// Forward-leg hop walk.
    pub hops: Vec<HopObservation>,
    /// Reply-leg hop walk (alive at the same time as `hops`).
    pub reply_hops: Vec<HopObservation>,
}

/// Mutable simulation state: ICMP rate limiter buckets and the draw counter
/// feeding probe-level randomness. One `SimState` per measurement driver;
/// probes must be issued in nondecreasing time order for rate limiting to be
/// meaningful (the drivers do).
#[derive(Debug, Default)]
pub struct SimState {
    limiters: HashMap<RouterId, RateLimiter>,
    counter: u64,
    /// Reusable hop/slot buffers for allocation-lean path walks.
    pub scratch: PathScratch,
}

impl SimState {
    pub fn new() -> Self {
        SimState::default()
    }

    fn next(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    /// Checkpoint serialization: the draw counter plus every limiter bucket
    /// as `(router, tokens_bits, last)`, sorted by router for determinism.
    /// Token levels travel as `f64::to_bits` so the round trip is exact.
    pub fn export(&self) -> (u64, Vec<(u32, u64, i64)>) {
        let mut limiters: Vec<(u32, u64, i64)> = self
            .limiters
            .iter()
            .map(|(r, l)| {
                let (tokens, last) = l.to_parts();
                (r.0, tokens.to_bits(), last)
            })
            .collect();
        limiters.sort();
        (self.counter, limiters)
    }

    /// Rebuild from [`Self::export`] output. A resumed driver continues the
    /// exact noise-draw and rate-limit sequence of the checkpointed one.
    pub fn import(counter: u64, limiters: &[(u32, u64, i64)]) -> SimState {
        SimState {
            counter,
            limiters: limiters
                .iter()
                .map(|&(r, bits, last)| {
                    (RouterId(r), RateLimiter::from_parts(f64::from_bits(bits), last))
                })
                .collect(),
            scratch: PathScratch::default(),
        }
    }
}

/// The simulated network: an immutable topology plus time-versioned routing.
///
/// Routing tables are organized as *epochs*: `(activation_time, per-router
/// FIBs)`. Most scenarios install a single epoch; routing-change experiments
/// (the probing-set staleness the paper handles in §3.2) add more.
pub struct Network {
    pub topo: Topology,
    epochs: Vec<(SimTime, Vec<Fib>)>,
    pub seed: u64,
    /// Fault injection: a deterministic schedule of timed failures (extra
    /// loss, interface silence, router reboots, ICMP rate-limit tightening,
    /// route flaps, renumbering, clock skew) consumed on every probe.
    /// Empty in normal operation; robustness tests install events (the old
    /// global drop knob is `FaultKind::ExtraLoss` at `FaultScope::Global`).
    pub fault: FaultSchedule,
}

impl Network {
    /// Create a network with an initial routing epoch active from t=-inf.
    pub fn new(topo: Topology, fibs: Vec<Fib>, seed: u64) -> Self {
        assert_eq!(fibs.len(), topo.routers.len(), "one FIB per router");
        Network { topo, epochs: vec![(SimTime::MIN, fibs)], seed, fault: FaultSchedule::new() }
    }

    /// Install a new routing epoch activating at `t` (must be the latest).
    pub fn add_epoch(&mut self, t: SimTime, fibs: Vec<Fib>) {
        assert_eq!(fibs.len(), self.topo.routers.len(), "one FIB per router");
        assert!(
            self.epochs.last().is_none_or(|(t0, _)| *t0 < t),
            "epochs must be appended in increasing time order"
        );
        self.epochs.push((t, fibs));
    }

    fn fibs_at(&self, t: SimTime) -> &[Fib] {
        let idx = self.epochs.partition_point(|(t0, _)| *t0 <= t);
        &self.epochs[idx - 1].1
    }

    /// FIB of one router at time `t` (diagnostics).
    pub fn fib(&self, router: RouterId, t: SimTime) -> &Fib {
        &self.fibs_at(t)[router.0 as usize]
    }

    /// Ground truth: the state of `link` in direction `dir` at `t`.
    ///
    /// Analysis code must NOT call this — it exists for the §5.4
    /// operator-validation harness, the NDT throughput model, and tests.
    pub fn link_state(&self, link: LinkId, dir: Direction, t: SimTime) -> LinkState {
        let l = self.topo.link(link);
        let stream = (link.0 as u64) << 1 | matches!(dir, Direction::BtoA) as u64;
        match l.load(dir) {
            Some(m) => l.queue.state(m.utilization(t), self.seed, stream, t),
            None => LinkState::idle(),
        }
    }

    /// Deterministic next-hop decision at `cur` for `dst` under flow `flow_id`.
    ///
    /// Returns `(link, direction, next router, ingress interface addr at next)`.
    fn forward_hop(
        &self,
        cur: RouterId,
        dst: Ipv4,
        src_for_hash: Ipv4,
        flow_id: u16,
        t: SimTime,
    ) -> Option<(LinkId, Direction, RouterId, Ipv4)> {
        let fib = &self.fibs_at(t)[cur.0 as usize];
        let group = fib.lookup(dst)?;
        let egress = ecmp_pick(group, flow_id, src_for_hash, dst, cur.0 as u64);
        let link = self.topo.iface(egress).link?;
        let dir = self.topo.link_direction(link, egress);
        let peer = self.topo.peer_iface(egress).expect("connected iface has a peer");
        Some((link, dir, peer.router, peer.addr))
    }

    /// Walk the forward path from `src` toward `dst` without loss draws.
    ///
    /// Used by ground-truth inspection, target selection, and the NDT model
    /// (which needs the set of links a TCP flow crosses). The walk stops at
    /// the terminating router, at a routing dead end, or after the 64-hop
    /// loop guard.
    pub fn forward_path(
        &self,
        src: RouterId,
        dst: Ipv4,
        flow_id: u16,
        t: SimTime,
    ) -> Vec<HopObservation> {
        let mut out = Vec::new();
        self.forward_path_into(src, dst, flow_id, t, &mut out);
        out
    }

    /// [`Self::forward_path`] into a caller-owned buffer (cleared first).
    /// With a reused buffer — e.g. [`SimState::scratch`] — steady-state
    /// walks allocate nothing.
    pub fn forward_path_into(
        &self,
        src: RouterId,
        dst: Ipv4,
        flow_id: u16,
        t: SimTime,
        out: &mut Vec<HopObservation>,
    ) {
        out.clear();
        let src_addr = self
            .topo
            .router(src)
            .ifaces
            .first()
            .map(|&i| self.topo.iface(i).addr)
            .unwrap_or(Ipv4::UNSPECIFIED);
        let mut cur = src;
        for _ in 0..MAX_HOPS {
            if self.topo.terminates(cur, dst) {
                break;
            }
            let Some((link, dir, next, ingress)) =
                self.forward_hop(cur, dst, src_addr, flow_id, t)
            else {
                break;
            };
            out.push(HopObservation { router: next, ingress_addr: ingress, link, direction: dir });
            cur = next;
        }
    }

    /// Cross one link: returns `Some(one-way delay in ms)` or `None` if the
    /// packet is dropped.
    ///
    /// Successful crossings are tallied into `crossed` (a per-probe local)
    /// rather than a counter here: a probe crosses ~10-20 links, and one
    /// `packets_forwarded.add(crossed)` per probe keeps the instrumented hot
    /// path inside the <5% overhead budget. The fault-blocked counter stays
    /// inline — it only fires when a fault is actually eating packets.
    fn cross(
        &self,
        link: LinkId,
        dir: Direction,
        t: SimTime,
        state: &mut SimState,
        crossed: &mut u64,
    ) -> Option<f64> {
        let l = self.topo.link(link);
        if self.fault.link_blocked(&self.topo, link, t) {
            crate::obs::metrics().fault_link_blocked.inc();
            return None;
        }
        let ls = self.link_state(link, dir, t);
        let p = ls.loss + self.fault.extra_loss(link, t);
        if p > 0.0 && noise::bernoulli(self.seed ^ 0x10_55, link.0 as u64, state.next(), p) {
            return None;
        }
        *crossed += 1;
        Some(l.prop_delay_ms + ls.queue_ms)
    }

    /// Route a reply from `from` back to `to_addr`, returning the one-way
    /// delay, or `None` when the reply is lost or unroutable.
    #[allow(clippy::too_many_arguments)]
    fn reply_path_delay(
        &self,
        from: RouterId,
        from_addr: Ipv4,
        to_addr: Ipv4,
        flow_id: u16,
        t: SimTime,
        state: &mut SimState,
        crossed: &mut u64,
    ) -> Option<f64> {
        let mut cur = from;
        let mut total = 0.0;
        for _ in 0..MAX_HOPS {
            if self.topo.terminates(cur, to_addr) {
                return Some(total);
            }
            let (link, dir, next, _) = self.forward_hop(cur, to_addr, from_addr, flow_id, t)?;
            total += self.cross(link, dir, t, state, crossed)?;
            cur = next;
        }
        None
    }

    /// Generate an ICMP response at `router`: applies unresponsiveness,
    /// rate limiting, and slow-path delay. Returns the generation delay.
    fn icmp_generate(
        &self,
        router: RouterId,
        t: SimTime,
        state: &mut SimState,
    ) -> Option<f64> {
        let m = crate::obs::metrics();
        if self.fault.icmp_suppressed(router, t) {
            m.icmp_suppressed_fault.inc();
            return None;
        }
        let prof = &self.topo.router(router).icmp;
        if prof.unresponsive_prob > 0.0
            && noise::bernoulli(self.seed ^ 0x1C_3F, router.0 as u64, state.next(), prof.unresponsive_prob)
        {
            m.icmp_unresponsive.inc();
            return None;
        }
        if let Some(flaky) = prof.flaky {
            if flaky.is_flaky_now(self.seed, router.0 as u64, t)
                && noise::bernoulli(self.seed ^ 0xF1A7, router.0 as u64, state.next(), flaky.drop_prob)
            {
                m.icmp_flaky_drop.inc();
                return None;
            }
        }
        // Injected rate-limit tightening composes with the router's own
        // profile: the smaller pps wins.
        let limit = match (prof.rate_limit_pps, self.fault.icmp_limit(router, t)) {
            (Some(own), Some((inj, ib))) if inj < own => Some((inj, ib)),
            (Some(own), _) => Some((own, prof.rate_limit_burst)),
            (None, inj) => inj,
        };
        if let Some((pps, burst)) = limit {
            let rl = state
                .limiters
                .entry(router)
                .or_insert_with(|| RateLimiter::new(burst, t));
            if !rl.allow(pps, burst, t) {
                m.icmp_rate_limited.inc();
                return None;
            }
        }
        let mut delay = prof.base_ms;
        if prof.slow_path_prob > 0.0
            && noise::bernoulli(self.seed ^ 0x51_0E, router.0 as u64, state.next(), prof.slow_path_prob)
        {
            m.icmp_slow_path.inc();
            delay += prof.slow_path_ms
                * (0.5 + 0.5 * noise::uniform(self.seed ^ 0x51_0F, router.0 as u64, state.next()));
        }
        m.icmp_generated.inc();
        Some(delay)
    }

    /// Walk a probe's path with the IP record-route option: collects the
    /// *egress* interface address of each router traversed, forward leg then
    /// reply leg, capped at the option's nine slots. Deterministic (no loss
    /// draws) — callers combine it with [`Self::send_probe`] when delivery
    /// odds matter. Returns `None` when the probe or its reply is
    /// unroutable.
    pub fn record_route(
        &self,
        src: RouterId,
        src_addr: Ipv4,
        dst: Ipv4,
        ttl: u8,
        flow_id: u16,
        t: SimTime,
    ) -> Option<Vec<Ipv4>> {
        let mut state = SimState::new();
        let mut slots = Vec::new();
        self.record_route_into(&mut state, src, src_addr, dst, ttl, flow_id, t, &mut slots)
            .then_some(slots)
    }

    /// [`Self::record_route`] through the reusable walk buffers of `state`
    /// and a caller-owned slot buffer (cleared first). Returns whether the
    /// probe and its reply were routable; on `false` the partial `slots`
    /// content is meaningless. Steady-state calls allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn record_route_into(
        &self,
        state: &mut SimState,
        src: RouterId,
        src_addr: Ipv4,
        dst: Ipv4,
        ttl: u8,
        flow_id: u16,
        t: SimTime,
        slots: &mut Vec<Ipv4>,
    ) -> bool {
        const RR_SLOTS: usize = 9;
        slots.clear();
        let push = |addr: Ipv4, slots: &mut Vec<Ipv4>| {
            if slots.len() < RR_SLOTS {
                slots.push(addr);
            }
        };
        // Borrow the walk buffers out of the scratch arena (a `mem::take`
        // swaps in empty vectors without allocating) so the arena and the
        // network can be used independently below.
        let mut walk = std::mem::take(&mut state.scratch.hops);
        let mut reply = std::mem::take(&mut state.scratch.reply_hops);
        let ok = (|| {
            // Forward leg until TTL expiry or termination.
            self.forward_path_into(src, dst, flow_id, t, &mut walk);
            if walk.is_empty() {
                return false;
            }
            let take = (ttl as usize).min(walk.len());
            for hop in &walk[..take] {
                // The egress iface of the *previous* router is the peer of
                // this hop's ingress iface.
                let Some(ingress) = self.topo.iface_by_addr(hop.ingress_addr) else {
                    return false;
                };
                let Some(egress) = self.topo.peer_iface(ingress.id) else { return false };
                push(egress.addr, slots);
            }
            let responder = walk[take - 1].router;
            // Reply leg back to the VP.
            self.forward_path_into(responder, src_addr, flow_id, t, &mut reply);
            if reply.is_empty() || reply.last().map(|h| h.router) != Some(src) {
                return false;
            }
            for hop in &reply {
                let Some(ingress) = self.topo.iface_by_addr(hop.ingress_addr) else {
                    return false;
                };
                let Some(egress) = self.topo.peer_iface(ingress.id) else { return false };
                push(egress.addr, slots);
            }
            true
        })();
        state.scratch.hops = walk;
        state.scratch.reply_hops = reply;
        ok
    }

    /// Inject one probe at time `t` and resolve its fate.
    ///
    /// Every exit increments exactly one outcome metric, so
    /// `manic_netsim_probes_sent` always equals the sum of the echo-reply,
    /// time-exceeded, unroutable, and per-reason dropped counters — the
    /// conservation invariant `tests/obs_conservation.rs` asserts.
    pub fn send_probe(&self, state: &mut SimState, spec: ProbeSpec, t: SimTime) -> ProbeStatus {
        let m = crate::obs::metrics();
        m.probes_sent.inc();
        let mut crossed = 0u64;
        let status = self.send_probe_inner(state, spec, t, m, &mut crossed);
        m.packets_forwarded.add(crossed);
        status
    }

    fn send_probe_inner(
        &self,
        state: &mut SimState,
        spec: ProbeSpec,
        t: SimTime,
        m: &crate::obs::Metrics,
        crossed: &mut u64,
    ) -> ProbeStatus {
        let mut cur = spec.src;
        let mut fwd = 0.0;
        let mut ttl = spec.ttl;
        if ttl == 0 {
            m.drop_zero_ttl.inc();
            return ProbeStatus::Lost;
        }
        // A VP with a skewed clock reports every RTT offset by the skew.
        let skew = self.fault.clock_skew_ms(spec.src, t);
        for _ in 0..MAX_HOPS {
            if self.topo.terminates(cur, spec.dst) && cur != spec.src {
                // Destination host answers the echo.
                if self.fault.silent_addr(&self.topo, spec.dst, t) {
                    m.drop_silent_addr.inc();
                    return ProbeStatus::Lost;
                }
                let Some(gen) = self.icmp_generate(cur, t, state) else {
                    m.drop_icmp_denied.inc();
                    return ProbeStatus::Lost;
                };
                let Some(rev) = self.reply_path_delay(
                    cur, spec.dst, spec.src_addr, spec.flow_id, t, state, crossed,
                ) else {
                    m.drop_reply_lost.inc();
                    return ProbeStatus::Lost;
                };
                let from = self.fault.renumbered(&self.topo, spec.dst, t);
                let rtt_ms = fwd + gen + rev + skew;
                m.echo_reply.inc();
                return ProbeStatus::EchoReply { from, rtt_ms };
            }
            let Some((link, dir, next, ingress)) =
                self.forward_hop(cur, spec.dst, spec.src_addr, spec.flow_id, t)
            else {
                m.unroutable.inc();
                return ProbeStatus::Unroutable;
            };
            let Some(delay) = self.cross(link, dir, t, state, crossed) else {
                m.drop_forward_loss.inc();
                return ProbeStatus::Lost;
            };
            fwd += delay;
            cur = next;
            ttl -= 1;
            if ttl == 0 && !self.topo.terminates(cur, spec.dst) {
                // Time exceeded at `cur`; response sourced from the ingress
                // interface the packet arrived on.
                if self.fault.silent_addr(&self.topo, ingress, t) {
                    m.drop_silent_addr.inc();
                    return ProbeStatus::Lost;
                }
                let Some(gen) = self.icmp_generate(cur, t, state) else {
                    m.drop_icmp_denied.inc();
                    return ProbeStatus::Lost;
                };
                let Some(rev) = self.reply_path_delay(
                    cur, ingress, spec.src_addr, spec.flow_id, t, state, crossed,
                ) else {
                    m.drop_reply_lost.inc();
                    return ProbeStatus::Lost;
                };
                // Renumbering rewrites the source address the reply carries;
                // the reply still routes from the real interface.
                let from = self.fault.renumbered(&self.topo, ingress, t);
                let rtt_ms = fwd + gen + rev + skew;
                m.time_exceeded.inc();
                return ProbeStatus::TimeExceeded { from, rtt_ms };
            }
        }
        // Forwarding loop or path longer than MAX_HOPS.
        m.drop_routing_loop.inc();
        ProbeStatus::Lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpProfile;
    use crate::ip::Prefix;
    use crate::queue::QueueModel;
    use crate::topo::{AsNumber, IfaceId, LinkKind};
    use crate::traffic::ConstantLoad;
    use std::sync::Arc;

    pub(super) fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    /// Chain: host(vp) -- r1 -- r2 ==interdomain== r3 -- dsthost(10.9.0.0/24)
    /// The r2--r3 link gets a configurable load model in the r2->r3 direction
    /// via `fwd_util` and in the r3->r2 (reply) direction via `rev_util`.
    pub(super) fn chain(fwd_util: f64, rev_util: f64) -> (Network, RouterId) {
        let mut t = Topology::new();
        let vp = t.add_router(AsNumber(100), "vp", "nyc", -5, IcmpProfile::default());
        let r1 = t.add_router(AsNumber(100), "r1", "nyc", -5, IcmpProfile::default());
        let r2 = t.add_router(AsNumber(100), "r2", "nyc", -5, IcmpProfile::default());
        let r3 = t.add_router(AsNumber(200), "r3", "nyc", -5, IcmpProfile::default());
        let dst = t.add_router(AsNumber(200), "dst", "nyc", -5, IcmpProfile::default());

        let vp0 = t.add_iface(vp, ip("10.0.0.10"));
        let r1a = t.add_iface(r1, ip("10.0.0.1"));
        let r1b = t.add_iface(r1, ip("10.0.1.1"));
        let r2a = t.add_iface(r2, ip("10.0.1.2"));
        let r2b = t.add_iface(r2, ip("10.0.2.1"));
        let r3a = t.add_iface(r3, ip("10.0.2.2"));
        let r3b = t.add_iface(r3, ip("10.0.3.1"));
        let d0 = t.add_iface(dst, ip("10.0.3.2"));

        t.connect(vp0, r1a, LinkKind::Access, 0.5, 1000.0, QueueModel::default(), None, None);
        t.connect(r1b, r2a, LinkKind::Internal, 2.0, 10_000.0, QueueModel::default(), None, None);
        t.connect(
            r2b,
            r3a,
            LinkKind::Interdomain,
            5.0,
            10_000.0,
            QueueModel { jitter_ms: 0.0, overload_elasticity: 1.0, ..QueueModel::default() },
            Some(Arc::new(ConstantLoad(fwd_util))),
            Some(Arc::new(ConstantLoad(rev_util))),
        );
        t.connect(r3b, d0, LinkKind::Access, 0.5, 1000.0, QueueModel::default(), None, None);
        t.add_host_prefix("10.9.0.0/24".parse().unwrap(), dst);

        // FIBs: everything toward 10.9/24 goes right; replies go left.
        let n = t.routers.len();
        let mut fibs = vec![Fib::new(); n];
        let dstp: Prefix = "10.9.0.0/24".parse().unwrap();
        let left: Prefix = "10.0.0.0/16".parse().unwrap();
        fibs[vp.0 as usize].insert(dstp, vec![vp0]);
        fibs[vp.0 as usize].insert("10.0.0.0/8".parse().unwrap(), vec![vp0]);
        fibs[r1.0 as usize].insert(dstp, vec![r1b]);
        fibs[r1.0 as usize].insert(Prefix::host(ip("10.0.0.10")), vec![r1a]);
        fibs[r1.0 as usize].insert("10.0.2.0/24".parse().unwrap(), vec![r1b]);
        fibs[r2.0 as usize].insert(dstp, vec![r2b]);
        fibs[r2.0 as usize].insert(left, vec![r2a]);
        fibs[r3.0 as usize].insert(dstp, vec![r3b]);
        fibs[r3.0 as usize].insert(left, vec![r3a]);
        fibs[dst.0 as usize].insert(left, vec![d0]);

        (Network::new(t, fibs, 7), vp)
    }

    fn probe(net: &Network, vp: RouterId, ttl: u8) -> ProbeStatus {
        probe_at(net, vp, ttl, 0)
    }

    pub(super) fn probe_at(net: &Network, vp: RouterId, ttl: u8, t: SimTime) -> ProbeStatus {
        let mut st = SimState::new();
        net.send_probe(
            &mut st,
            ProbeSpec { src: vp, src_addr: ip("10.0.0.10"), dst: ip("10.9.0.5"), ttl, flow_id: 42 },
            t,
        )
    }

    #[test]
    fn traceroute_hops_in_order() {
        let (net, vp) = chain(0.1, 0.1);
        // TTL 1 expires at r1 (ingress 10.0.0.1), TTL 2 at r2 (10.0.1.2),
        // TTL 3 at r3 (10.0.2.2), TTL 4+ reaches the destination.
        match probe(&net, vp, 1) {
            ProbeStatus::TimeExceeded { from, .. } => assert_eq!(from, ip("10.0.0.1")),
            other => panic!("ttl1: {other:?}"),
        }
        match probe(&net, vp, 2) {
            ProbeStatus::TimeExceeded { from, .. } => assert_eq!(from, ip("10.0.1.2")),
            other => panic!("ttl2: {other:?}"),
        }
        match probe(&net, vp, 3) {
            ProbeStatus::TimeExceeded { from, .. } => assert_eq!(from, ip("10.0.2.2")),
            other => panic!("ttl3: {other:?}"),
        }
        match probe(&net, vp, 10) {
            ProbeStatus::EchoReply { from, .. } => assert_eq!(from, ip("10.9.0.5")),
            other => panic!("ttl10: {other:?}"),
        }
    }

    #[test]
    fn rtt_grows_with_distance() {
        let (net, vp) = chain(0.1, 0.1);
        let r1 = probe(&net, vp, 1).rtt().unwrap();
        let r2 = probe(&net, vp, 2).rtt().unwrap();
        let r3 = probe(&net, vp, 3).rtt().unwrap();
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
        // r3 crosses the 5ms link twice more than r2 (forward + reply).
        assert!(r3 - r2 > 9.0, "expected ~10ms gap, got {}", r3 - r2);
    }

    #[test]
    fn reverse_direction_congestion_inflates_far_rtt_only() {
        // Congest the interdomain link in the r3->r2 (reply) direction, as a
        // real eyeball-bound content flow would. The near-side probe (ttl 2)
        // never crosses that link; the far-side probe's *reply* does.
        let (quiet, vp) = chain(0.1, 0.1);
        let (congested, _) = chain(0.1, 1.1);
        let near_q = probe(&quiet, vp, 2).rtt().unwrap();
        let near_c = probe(&congested, vp, 2).rtt().unwrap();
        let far_q = probe(&quiet, vp, 3).rtt().unwrap();
        let mut far_c = None;
        // Overload drops ~9% of replies; retry until one gets through.
        let mut st = SimState::new();
        for i in 0..50 {
            let s = congested.send_probe(
                &mut st,
                ProbeSpec {
                    src: vp,
                    src_addr: ip("10.0.0.10"),
                    dst: ip("10.9.0.5"),
                    ttl: 3,
                    flow_id: 42,
                },
                i,
            );
            if let Some(r) = s.rtt() {
                far_c = Some(r);
                break;
            }
        }
        let far_c = far_c.expect("at least one far probe should survive");
        assert!((near_q - near_c).abs() < 2.0, "near end unaffected");
        assert!(far_c > far_q + 30.0, "far RTT elevated by standing queue: {far_q} -> {far_c}");
    }

    #[test]
    fn forward_direction_congestion_inflates_far_rtt() {
        let (congested, vp) = chain(1.2, 0.1);
        let mut st = SimState::new();
        let mut got = None;
        for i in 0..100 {
            let s = congested.send_probe(
                &mut st,
                ProbeSpec {
                    src: vp,
                    src_addr: ip("10.0.0.10"),
                    dst: ip("10.9.0.5"),
                    ttl: 3,
                    flow_id: 42,
                },
                i,
            );
            if let Some(r) = s.rtt() {
                got = Some(r);
                break;
            }
        }
        assert!(got.expect("some probe survives") > 40.0);
    }

    #[test]
    fn overload_drops_probes() {
        let (congested, vp) = chain(2.0, 0.1); // 50% forward loss
        let mut st = SimState::new();
        let lost = (0..200)
            .filter(|&i| {
                congested
                    .send_probe(
                        &mut st,
                        ProbeSpec {
                            src: vp,
                            src_addr: ip("10.0.0.10"),
                            dst: ip("10.9.0.5"),
                            ttl: 3,
                            flow_id: 42,
                        },
                        i,
                    )
                    .rtt()
                    .is_none()
            })
            .count();
        assert!(lost > 60 && lost < 140, "expected ~50% loss, saw {lost}/200");
    }

    #[test]
    fn unroutable_and_zero_ttl() {
        let (net, vp) = chain(0.1, 0.1);
        let mut st = SimState::new();
        let s = net.send_probe(
            &mut st,
            ProbeSpec { src: vp, src_addr: ip("10.0.0.10"), dst: ip("172.16.0.1"), ttl: 5, flow_id: 1 },
            0,
        );
        // VP's default 10/8 route forwards it, then r1 has no route.
        assert!(matches!(s, ProbeStatus::Unroutable), "{s:?}");
        assert_eq!(probe(&net, vp, 0), ProbeStatus::Lost);
    }

    #[test]
    fn forward_path_lists_links() {
        let (net, vp) = chain(0.1, 0.1);
        let path = net.forward_path(vp, ip("10.9.0.5"), 42, 0);
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].ingress_addr, ip("10.0.0.1"));
        assert_eq!(path[2].ingress_addr, ip("10.0.2.2"));
        assert_eq!(path[3].ingress_addr, ip("10.0.3.2"));
        assert_eq!(net.topo.link(path[2].link).kind, LinkKind::Interdomain);
    }

    #[test]
    fn routing_epochs_switch_paths() {
        let (mut net, vp) = chain(0.1, 0.1);
        // New epoch at t=1000: drop the route to the destination at r1.
        let mut fibs: Vec<Fib> = (0..net.topo.routers.len()).map(|_| Fib::new()).collect();
        fibs[vp.0 as usize].insert("10.0.0.0/8".parse().unwrap(), vec![IfaceId(0)]);
        net.add_epoch(1000, fibs);
        assert!(probe(&net, vp, 4).rtt().is_some());
        let mut st = SimState::new();
        let late = net.send_probe(
            &mut st,
            ProbeSpec { src: vp, src_addr: ip("10.0.0.10"), dst: ip("10.9.0.5"), ttl: 4, flow_id: 42 },
            2000,
        );
        assert!(matches!(late, ProbeStatus::Unroutable), "{late:?}");
    }

    #[test]
    fn rate_limited_router_drops_excess() {
        let (mut net, vp) = chain(0.1, 0.1);
        // Make r2 rate-limit to 1 pps with burst 2.
        net.topo.routers[2].icmp = IcmpProfile {
            rate_limit_pps: Some(1.0),
            rate_limit_burst: 2.0,
            ..IcmpProfile::default()
        };
        let mut st = SimState::new();
        let mut ok = 0;
        for _ in 0..10 {
            let s = net.send_probe(
                &mut st,
                ProbeSpec { src: vp, src_addr: ip("10.0.0.10"), dst: ip("10.9.0.5"), ttl: 2, flow_id: 9 },
                0, // all at the same instant
            );
            if s.rtt().is_some() {
                ok += 1;
            }
        }
        assert_eq!(ok, 2, "only the burst passes");
    }

    #[test]
    fn silent_router_never_answers() {
        let (mut net, vp) = chain(0.1, 0.1);
        net.topo.routers[1].icmp = IcmpProfile::silent();
        for _ in 0..5 {
            assert_eq!(probe(&net, vp, 1), ProbeStatus::Lost);
        }
        // But it still forwards.
        assert!(probe(&net, vp, 2).rtt().is_some());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::tests::{chain, ip, probe_at};
    use super::*;
    use crate::fault::{FaultEvent, FaultKind, FaultScope};
    use crate::topo::IfaceId;

    #[test]
    fn iface_silence_eats_probes_for_its_window_only() {
        let (mut net, vp) = chain(0.1, 0.1);
        // Silence r2's ingress iface 10.0.1.2 (iface index 3) over [100, 200).
        net.fault.push(FaultEvent::window(
            FaultKind::IfaceSilence,
            FaultScope::Iface(IfaceId(3)),
            100,
            200,
        ));
        assert!(probe_at(&net, vp, 2, 50).rtt().is_some(), "before the window");
        assert_eq!(probe_at(&net, vp, 2, 150), ProbeStatus::Lost, "inside it");
        assert!(probe_at(&net, vp, 2, 250).rtt().is_some(), "after it");
        // Forwarding through the silent interface is unaffected.
        assert!(probe_at(&net, vp, 3, 150).rtt().is_some());
    }

    #[test]
    fn reboot_blacks_out_then_rebuilds_then_recovers() {
        let (mut net, vp) = chain(0.1, 0.1);
        // r2 (router index 2) down over [1000, 1120), rebuilding until 1420.
        net.fault.push(FaultEvent::window(
            FaultKind::RouterReboot { rebuild_secs: 300 },
            FaultScope::Router(RouterId(2)),
            1000,
            1120,
        ));
        // Down: nothing beyond r1 is reachable (r2 forwards nothing).
        assert!(probe_at(&net, vp, 1, 1050).rtt().is_some(), "r1 unaffected");
        assert_eq!(probe_at(&net, vp, 2, 1050), ProbeStatus::Lost);
        assert_eq!(probe_at(&net, vp, 10, 1050), ProbeStatus::Lost, "transit dead");
        // Rebuild: forwarding is back but r2's control plane stays dark.
        assert_eq!(probe_at(&net, vp, 2, 1200), ProbeStatus::Lost, "ICMP silent");
        assert!(probe_at(&net, vp, 3, 1200).rtt().is_some(), "forwards again");
        assert!(probe_at(&net, vp, 10, 1200).rtt().is_some());
        // Fully recovered.
        assert!(probe_at(&net, vp, 2, 1500).rtt().is_some());
    }

    #[test]
    fn renumber_reports_the_alias() {
        let (mut net, vp) = chain(0.1, 0.1);
        let alias = ip("192.168.0.7");
        net.fault.push(FaultEvent::window(
            FaultKind::Renumber { alias },
            FaultScope::Iface(IfaceId(3)), // 10.0.1.2, r2's ingress
            100,
            200,
        ));
        match probe_at(&net, vp, 2, 150) {
            ProbeStatus::TimeExceeded { from, .. } => assert_eq!(from, alias),
            other => panic!("{other:?}"),
        }
        match probe_at(&net, vp, 2, 250) {
            ProbeStatus::TimeExceeded { from, .. } => assert_eq!(from, ip("10.0.1.2")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn injected_rate_limit_tightens_unlimited_router() {
        let (mut net, vp) = chain(0.1, 0.1);
        net.fault.push(FaultEvent::always(
            FaultKind::IcmpRateLimit { pps: 1.0, burst: 2.0 },
            FaultScope::Router(RouterId(2)),
        ));
        let mut st = SimState::new();
        let ok = (0..10)
            .filter(|_| {
                net.send_probe(
                    &mut st,
                    ProbeSpec {
                        src: vp,
                        src_addr: ip("10.0.0.10"),
                        dst: ip("10.9.0.5"),
                        ttl: 2,
                        flow_id: 9,
                    },
                    0, // all at the same instant
                )
                .rtt()
                .is_some()
            })
            .count();
        assert_eq!(ok, 2, "only the injected burst passes");
    }

    #[test]
    fn clock_skew_offsets_reported_rtt() {
        let (clean, vp) = chain(0.1, 0.1);
        let (mut skewed, _) = chain(0.1, 0.1);
        skewed.fault.push(FaultEvent::always(
            FaultKind::ClockSkew { ms: 25.0 },
            FaultScope::Router(vp),
        ));
        let base = probe_at(&clean, vp, 2, 0).rtt().unwrap();
        let off = probe_at(&skewed, vp, 2, 0).rtt().unwrap();
        assert!((off - base - 25.0).abs() < 1e-9, "{base} -> {off}");
    }

    #[test]
    fn route_flap_takes_the_link_down_periodically() {
        let (mut net, vp) = chain(0.1, 0.1);
        // Flap the interdomain r2--r3 link (LinkId 2): 60s up, 60s down.
        net.fault.push(FaultEvent::window(
            FaultKind::RouteFlap { up_secs: 60, down_secs: 60 },
            FaultScope::Link(LinkId(2)),
            0,
            100_000,
        ));
        assert!(probe_at(&net, vp, 10, 30).rtt().is_some(), "up phase");
        assert_eq!(probe_at(&net, vp, 10, 90), ProbeStatus::Lost, "down phase");
        assert!(probe_at(&net, vp, 10, 130).rtt().is_some(), "up again");
        // The near side of the link never crosses it.
        assert!(probe_at(&net, vp, 2, 90).rtt().is_some());
    }
}

#[cfg(test)]
mod rr_tests {
    use super::*;
    use crate::icmp::IcmpProfile;
    use crate::ip::Prefix;
    use crate::queue::QueueModel;
    use crate::topo::{AsNumber, LinkKind};

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    /// A long chain of 12 routers so the RR option's nine slots overflow.
    fn long_chain() -> (Network, RouterId, Ipv4) {
        let mut t = Topology::new();
        let n = 12;
        let mut routers = Vec::new();
        for i in 0..n {
            routers.push(t.add_router(
                AsNumber(100),
                format!("r{i}"),
                "nyc",
                -5,
                IcmpProfile::default(),
            ));
        }
        let mut fibs = vec![Fib::new(); n];
        let dstp: Prefix = "10.9.0.0/24".parse().unwrap();
        let backp: Prefix = "10.0.0.0/16".parse().unwrap();
        for i in 0..n - 1 {
            let a = t.add_iface(routers[i], ip(&format!("10.0.{i}.1")));
            let b = t.add_iface(routers[i + 1], ip(&format!("10.0.{i}.2")));
            t.connect(a, b, LinkKind::Internal, 1.0, 1000.0, QueueModel::default(), None, None);
            fibs[i].insert(dstp, vec![a]);
            fibs[i + 1].insert(backp, vec![b]);
        }
        t.add_host_prefix(dstp, routers[n - 1]);
        let src_addr = ip("10.0.0.1");
        (Network::new(t, fibs, 5), routers[0], src_addr)
    }

    #[test]
    fn record_route_caps_at_nine_slots() {
        let (net, src, src_addr) = long_chain();
        let slots = net
            .record_route(src, src_addr, ip("10.9.0.5"), 32, 1, 0)
            .expect("routable");
        assert_eq!(slots.len(), 9, "IP RR option holds nine addresses");
    }

    #[test]
    fn record_route_unroutable_is_none() {
        let (net, src, src_addr) = long_chain();
        assert!(net.record_route(src, src_addr, ip("172.16.0.1"), 32, 1, 0).is_none());
    }

    #[test]
    fn fault_injection_is_off_by_default_and_scales() {
        let (net, src, src_addr) = long_chain();
        let mut st = SimState::new();
        // Clean by default (base loss only): nearly all probes answered.
        let ok = (0..100)
            .filter(|&i| {
                net.send_probe(
                    &mut st,
                    ProbeSpec { src, src_addr, dst: ip("10.9.0.5"), ttl: 32, flow_id: 1 },
                    i,
                )
                .rtt()
                .is_some()
            })
            .count();
        assert!(ok >= 98, "{ok}/100");
        // With a 5% per-crossing fault over ~22 crossings, most probes die.
        let mut faulty = net;
        faulty.fault.push(crate::fault::FaultEvent::always(
            crate::fault::FaultKind::ExtraLoss { prob: 0.05 },
            crate::fault::FaultScope::Global,
        ));
        let mut st = SimState::new();
        let ok = (0..100)
            .filter(|&i| {
                faulty
                    .send_probe(
                        &mut st,
                        ProbeSpec { src, src_addr, dst: ip("10.9.0.5"), ttl: 32, flow_id: 1 },
                        i,
                    )
                    .rtt()
                    .is_some()
            })
            .count();
        assert!(ok < 70, "{ok}/100 under fault injection");
    }
}
