//! Forwarding information base: longest-prefix-match to ECMP next-hop sets.

use crate::ip::{Ipv4, Prefix};
use crate::topo::IfaceId;

/// One route: a prefix and the set of equal-cost egress interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    pub prefix: Prefix,
    /// Non-empty set of equal-cost egress interfaces (ECMP group).
    pub next_hops: Vec<IfaceId>,
}

/// A binary trie keyed on address bits, supporting longest-prefix match.
///
/// ```
/// use manic_netsim::{Fib, IfaceId, Ipv4, Prefix};
///
/// let mut fib = Fib::new();
/// fib.insert("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
/// fib.insert("10.7.0.0/16".parse().unwrap(), vec![IfaceId(2)]);
/// let dst: Ipv4 = "10.7.64.1".parse().unwrap();
/// assert_eq!(fib.lookup(dst), Some(&[IfaceId(2)][..]));
/// let other: Ipv4 = "10.9.0.1".parse().unwrap();
/// assert_eq!(fib.lookup(other), Some(&[IfaceId(1)][..]));
/// ```
///
/// Interdomain routers hold hundreds of thousands of routes in production;
/// our scenarios hold hundreds to thousands, but probes perform millions of
/// lookups over a longitudinal run, so an O(32) trie walk (rather than a
/// linear scan) keeps the simulator fast. Correctness is property-tested
/// against a brute-force scan.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    nodes: Vec<Node>,
    routes: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<u32>; 2],
    /// Route terminating at this node, if any.
    entry: Option<Vec<IfaceId>>,
}

impl Fib {
    pub fn new() -> Self {
        Fib { nodes: vec![Node::default()], routes: 0 }
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes
    }

    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Install (or replace) a route. The next-hop set must be non-empty.
    pub fn insert(&mut self, prefix: Prefix, next_hops: Vec<IfaceId>) {
        assert!(!next_hops.is_empty(), "route must have at least one next hop");
        let mut node = 0usize;
        let addr = prefix.addr().0;
        for depth in 0..prefix.len() {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[node].children[bit] = Some(n as u32);
                    n
                }
            };
        }
        if self.nodes[node].entry.replace(next_hops).is_none() {
            self.routes += 1;
        }
    }

    /// Longest-prefix match: the most specific route covering `dst`.
    pub fn lookup(&self, dst: Ipv4) -> Option<&[IfaceId]> {
        let mut node = 0usize;
        let mut best: Option<&[IfaceId]> = self.nodes[0].entry.as_deref();
        for depth in 0..32 {
            let bit = ((dst.0 >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(n) => {
                    node = n as usize;
                    if let Some(e) = self.nodes[node].entry.as_deref() {
                        best = Some(e);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// All installed routes (for diagnostics and tests), in no particular order.
    pub fn entries(&self) -> Vec<FibEntry> {
        let mut out = Vec::new();
        // Depth-first walk reconstructing prefixes.
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)];
        while let Some((node, addr, len)) = stack.pop() {
            if let Some(nh) = &self.nodes[node].entry {
                out.push(FibEntry {
                    prefix: Prefix::new(Ipv4(addr), len),
                    next_hops: nh.clone(),
                });
            }
            for bit in 0..2 {
                if let Some(child) = self.nodes[node].children[bit] {
                    let mut a = addr;
                    if bit == 1 {
                        a |= 1 << (31 - len);
                    }
                    stack.push((child as usize, a, len + 1));
                }
            }
        }
        out
    }
}

/// Pick one next hop from an ECMP group with a stable per-flow hash.
///
/// Per-flow load balancers hash the packet 5-tuple; TSLP keeps its flow
/// identifier (ICMP checksum) constant precisely so that this choice is
/// stable across probes (§3.1, citing Paris traceroute). We hash
/// `(flow_id, src, dst, router_salt)` so that different flows spread across
/// the group while one flow always takes the same member.
pub fn ecmp_pick(group: &[IfaceId], flow_id: u16, src: Ipv4, dst: Ipv4, router_salt: u64) -> IfaceId {
    debug_assert!(!group.is_empty());
    if group.len() == 1 {
        return group[0];
    }
    let h = crate::noise::hash3(
        router_salt,
        ((flow_id as u64) << 32) | src.0 as u64,
        dst.0 as u64,
    );
    group[(h % group.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut fib = Fib::new();
        fib.insert(pfx("10.0.0.0/8"), vec![IfaceId(1)]);
        fib.insert(pfx("10.1.0.0/16"), vec![IfaceId(2)]);
        fib.insert(pfx("10.1.5.0/24"), vec![IfaceId(3)]);
        assert_eq!(fib.lookup(ip("10.1.5.9")), Some(&[IfaceId(3)][..]));
        assert_eq!(fib.lookup(ip("10.1.9.9")), Some(&[IfaceId(2)][..]));
        assert_eq!(fib.lookup(ip("10.9.9.9")), Some(&[IfaceId(1)][..]));
        assert_eq!(fib.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn default_route() {
        let mut fib = Fib::new();
        fib.insert(pfx("0.0.0.0/0"), vec![IfaceId(9)]);
        assert_eq!(fib.lookup(ip("200.1.2.3")), Some(&[IfaceId(9)][..]));
    }

    #[test]
    fn replace_route() {
        let mut fib = Fib::new();
        fib.insert(pfx("10.0.0.0/8"), vec![IfaceId(1)]);
        fib.insert(pfx("10.0.0.0/8"), vec![IfaceId(2)]);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(ip("10.0.0.1")), Some(&[IfaceId(2)][..]));
    }

    #[test]
    fn host_routes() {
        let mut fib = Fib::new();
        fib.insert(Prefix::host(ip("10.0.0.7")), vec![IfaceId(4)]);
        assert_eq!(fib.lookup(ip("10.0.0.7")), Some(&[IfaceId(4)][..]));
        assert_eq!(fib.lookup(ip("10.0.0.8")), None);
    }

    #[test]
    fn entries_roundtrip() {
        let mut fib = Fib::new();
        let routes = [
            (pfx("10.0.0.0/8"), vec![IfaceId(1)]),
            (pfx("10.1.0.0/16"), vec![IfaceId(2), IfaceId(3)]),
            (pfx("0.0.0.0/0"), vec![IfaceId(4)]),
        ];
        for (p, nh) in &routes {
            fib.insert(*p, nh.clone());
        }
        let mut got = fib.entries();
        got.sort_by_key(|e| (e.prefix.len(), e.prefix.addr()));
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].prefix, pfx("0.0.0.0/0"));
        assert_eq!(got[2].next_hops, vec![IfaceId(2), IfaceId(3)]);
    }

    #[test]
    fn ecmp_stable_and_spreading() {
        let group = vec![IfaceId(1), IfaceId(2), IfaceId(3)];
        let src = ip("10.0.0.1");
        let dst = ip("10.9.0.1");
        let a = ecmp_pick(&group, 100, src, dst, 7);
        for _ in 0..10 {
            assert_eq!(ecmp_pick(&group, 100, src, dst, 7), a, "flow must be stable");
        }
        // Different flow ids should spread across members.
        let distinct: std::collections::HashSet<_> =
            (0..64u16).map(|f| ecmp_pick(&group, f, src, dst, 7)).collect();
        assert!(distinct.len() >= 2, "ECMP should use multiple members");
    }
}
