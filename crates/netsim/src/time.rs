//! Simulated calendar time.
//!
//! Simulation timestamps are seconds since the simulation epoch,
//! **2016-01-01 00:00:00 UTC** — two months before the paper's measurement
//! window opens (March 2016) so that warm-up probing has room. The analysis
//! pipelines need civil-calendar arithmetic (month boundaries for Figure 7,
//! day-of-week for Figure 9's weekend split, local time-of-day for the FCC
//! peak-hours comparison), so this module provides a small proleptic
//! Gregorian calendar with no external dependencies.


/// Seconds since 2016-01-01 00:00:00 UTC.
pub type SimTime = i64;

pub const SECS_PER_MIN: i64 = 60;
pub const SECS_PER_HOUR: i64 = 3600;
pub const SECS_PER_DAY: i64 = 86_400;

/// Days between 1970-01-01 and 2016-01-01 (the simulation epoch).
const EPOCH_DAYS_FROM_UNIX: i64 = 16_801;

/// A civil calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    /// 1-12.
    pub month: u8,
    /// 1-31.
    pub day: u8,
}

impl Date {
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month) && (1..=31).contains(&day));
        Date { year, month, day }
    }
}

/// Days from the Unix epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_unix(d: Date) -> i64 {
    let y = d.year as i64 - if d.month <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = d.month as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d.day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_unix`].
fn unix_days_to_date(z: i64) -> Date {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    Date { year: (y + if m <= 2 { 1 } else { 0 }) as i32, month: m, day: d }
}

/// Simulation time at 00:00 UTC on the given date.
pub fn date_to_sim(d: Date) -> SimTime {
    (days_from_unix(d) - EPOCH_DAYS_FROM_UNIX) * SECS_PER_DAY
}

/// Simulation time for a date + UTC clock time.
pub fn datetime_to_sim(d: Date, hour: u8, min: u8, sec: u8) -> SimTime {
    date_to_sim(d) + hour as i64 * SECS_PER_HOUR + min as i64 * SECS_PER_MIN + sec as i64
}

/// Civil UTC date for a simulation time.
pub fn sim_to_date(t: SimTime) -> Date {
    unix_days_to_date(t.div_euclid(SECS_PER_DAY) + EPOCH_DAYS_FROM_UNIX)
}

/// Day of week: 0 = Monday ... 6 = Sunday.
pub fn day_of_week(t: SimTime) -> u8 {
    // 1970-01-01 was a Thursday (weekday index 3 with Monday=0).
    let days = t.div_euclid(SECS_PER_DAY) + EPOCH_DAYS_FROM_UNIX;
    ((days + 3).rem_euclid(7)) as u8
}

/// True for Saturday/Sunday in UTC (callers shift by a timezone offset first
/// when they need local weekends).
pub fn is_weekend(t: SimTime) -> bool {
    day_of_week(t) >= 5
}

/// Fractional hour of day, UTC [0, 24).
pub fn hour_of_day(t: SimTime) -> f64 {
    t.rem_euclid(SECS_PER_DAY) as f64 / SECS_PER_HOUR as f64
}

/// Fractional local hour of day for a fixed UTC offset in hours
/// (simulated networks use fixed offsets; DST is noise the paper's analysis
/// also ignores).
pub fn local_hour(t: SimTime, tz_offset_hours: i8) -> f64 {
    hour_of_day(t + tz_offset_hours as i64 * SECS_PER_HOUR)
}

/// Months elapsed since January 2016 (Jan 2016 = 0, Mar 2016 = 2, Dec 2017 = 23).
pub fn month_index(t: SimTime) -> u32 {
    let d = sim_to_date(t);
    ((d.year - 2016) * 12 + d.month as i32 - 1).max(0) as u32
}

/// First instant of month `idx` (months since Jan 2016).
pub fn month_start(idx: u32) -> SimTime {
    let year = 2016 + (idx / 12) as i32;
    let month = (idx % 12) as u8 + 1;
    date_to_sim(Date::new(year, month, 1))
}

/// Day index since the simulation epoch (UTC midnight boundaries).
pub fn day_index(t: SimTime) -> i64 {
    t.div_euclid(SECS_PER_DAY)
}

/// First instant of day `idx`.
pub fn day_start(idx: i64) -> SimTime {
    idx * SECS_PER_DAY
}

/// Human-readable `YYYY-MM-DD HH:MM` UTC rendering.
pub fn format_sim(t: SimTime) -> String {
    let d = sim_to_date(t);
    let secs = t.rem_euclid(SECS_PER_DAY);
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}",
        d.year,
        d.month,
        d.day,
        secs / SECS_PER_HOUR,
        (secs % SECS_PER_HOUR) / SECS_PER_MIN
    )
}

/// Short month label (`Mar'16`) for table rendering.
pub fn month_label(idx: u32) -> String {
    const NAMES: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    format!("{}'{}", NAMES[(idx % 12) as usize], 16 + idx / 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_1_2016() {
        assert_eq!(sim_to_date(0), Date::new(2016, 1, 1));
        assert_eq!(date_to_sim(Date::new(2016, 1, 1)), 0);
    }

    #[test]
    fn leap_year_2016_handled() {
        let feb29 = date_to_sim(Date::new(2016, 2, 29));
        assert_eq!(sim_to_date(feb29), Date::new(2016, 2, 29));
        assert_eq!(sim_to_date(feb29 + SECS_PER_DAY), Date::new(2016, 3, 1));
    }

    #[test]
    fn roundtrip_many_days() {
        for day in 0..800 {
            let t = day * SECS_PER_DAY + 12 * SECS_PER_HOUR;
            let d = sim_to_date(t);
            assert_eq!(date_to_sim(d) + 12 * SECS_PER_HOUR, t, "day {day}");
        }
    }

    #[test]
    fn day_of_week_anchors() {
        // 2016-01-01 was a Friday.
        assert_eq!(day_of_week(0), 4);
        // 2016-01-02 Saturday, 2016-01-03 Sunday -> weekend.
        assert!(is_weekend(SECS_PER_DAY));
        assert!(is_weekend(2 * SECS_PER_DAY));
        assert!(!is_weekend(3 * SECS_PER_DAY));
        // 2017-12-25 was a Monday.
        assert_eq!(day_of_week(date_to_sim(Date::new(2017, 12, 25))), 0);
    }

    #[test]
    fn month_index_and_start() {
        assert_eq!(month_index(0), 0);
        assert_eq!(month_index(date_to_sim(Date::new(2016, 3, 15))), 2);
        assert_eq!(month_index(date_to_sim(Date::new(2017, 12, 31))), 23);
        assert_eq!(month_start(2), date_to_sim(Date::new(2016, 3, 1)));
        assert_eq!(month_start(23), date_to_sim(Date::new(2017, 12, 1)));
        assert_eq!(month_label(2), "Mar'16");
        assert_eq!(month_label(23), "Dec'17");
    }

    #[test]
    fn local_hour_wraps() {
        // 02:00 UTC at UTC-8 is 18:00 the previous day.
        let t = datetime_to_sim(Date::new(2016, 6, 1), 2, 0, 0);
        assert!((local_hour(t, -8) - 18.0).abs() < 1e-9);
        assert!((local_hour(t, 0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn format_is_readable() {
        let t = datetime_to_sim(Date::new(2017, 12, 7), 18, 30, 0);
        assert_eq!(format_sim(t), "2017-12-07 18:30");
    }
}
