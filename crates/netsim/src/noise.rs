//! Deterministic hash-based noise.
//!
//! The fluid traffic layer must be a *pure function of time*: two components
//! asking for a link's utilization at the same instant must see the same
//! value, and re-running a study from the same seed must reproduce it
//! bit-for-bit. Stateful RNGs cannot provide that across out-of-order
//! queries, so all "randomness" in the fluid layer (demand noise, loss draws,
//! per-probe jitter) is derived by hashing `(seed, stream, counter)` with
//! SplitMix64 — a cheap, well-distributed 64-bit mixer.

/// SplitMix64 finalizer: maps any u64 to a well-mixed u64.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a seed and two stream identifiers into one hash.
#[inline]
pub fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    mix(seed ^ mix(a ^ mix(b)))
}

/// Uniform f64 in [0, 1) from a hash.
#[inline]
pub fn unit(h: u64) -> f64 {
    // Take the top 53 bits for a dyadic uniform in [0,1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in [0,1) from (seed, stream, counter).
#[inline]
pub fn uniform(seed: u64, stream: u64, counter: u64) -> f64 {
    unit(hash3(seed, stream, counter))
}

/// Symmetric noise in [-1, 1) from (seed, stream, counter).
#[inline]
pub fn signed(seed: u64, stream: u64, counter: u64) -> f64 {
    2.0 * uniform(seed, stream, counter) - 1.0
}

/// Approximate standard normal via the sum of four uniforms (Irwin–Hall,
/// variance-corrected). Cheap, deterministic, and plenty for latency jitter.
#[inline]
pub fn gaussian(seed: u64, stream: u64, counter: u64) -> f64 {
    let base = hash3(seed, stream, counter);
    let mut s = 0.0;
    for i in 0..4u64 {
        s += unit(mix(base ^ i));
    }
    // Sum of 4 U(0,1): mean 2, variance 4/12 -> sd = 1/sqrt(3).
    (s - 2.0) * 3.0f64.sqrt()
}

/// Bernoulli draw with probability `p` from (seed, stream, counter).
#[inline]
pub fn bernoulli(seed: u64, stream: u64, counter: u64, p: f64) -> bool {
    uniform(seed, stream, counter) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
    }

    #[test]
    fn uniform_in_range_and_spread() {
        let mut lo = 0;
        let mut hi = 0;
        for i in 0..10_000 {
            let u = uniform(42, 7, i);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        // Split should be near even.
        assert!((lo as i64 - hi as i64).abs() < 500, "lo={lo} hi={hi}");
    }

    #[test]
    fn gaussian_moments() {
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let g = gaussian(9, 1, i);
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let hits = (0..10_000).filter(|&i| bernoulli(5, 5, i, 0.2)).count();
        assert!((hits as f64 / 10_000.0 - 0.2).abs() < 0.02, "hits={hits}");
    }
}
