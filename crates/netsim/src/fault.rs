//! Deterministic fault injection.
//!
//! The paper's measurement system lived with a hostile substrate: VP churn
//! (86 hosted VPs over the study, 63 left by December 2017, §3), routers that
//! tighten ICMP rate limiting without notice (64-85% of loss-probe responses
//! corrupted, §5.2), interfaces that fall silent or get renumbered, and
//! routing that flaps underneath a pinned probing set (§3.2). The robustness
//! of the control loop is only testable if the simulator can produce those
//! failures on demand — deterministically, so a failing chaos run replays
//! bit-for-bit from its seed.
//!
//! A [`FaultSchedule`] is a list of timed [`FaultEvent`]s, each a
//! [`FaultKind`] applied to a [`FaultScope`] over a `[from, until)` window.
//! The schedule is pure state: every query is a pure function of `(event
//! list, t)`, which keeps the fluid fast path valid (the same bin queried
//! twice sees the same faults). `Network` consumes it in packet mode
//! (`cross`, `icmp_generate`, `send_probe`) and the probing layer consumes it
//! in fluid mode (`ProbePath::response_prob`); the measurement control loop
//! polls [`FaultSchedule::vp_retired`] for host churn.

use crate::ip::Ipv4;
use crate::noise;
use crate::time::SimTime;
use crate::topo::{IfaceId, LinkId, RouterId, Topology};

/// What part of the world a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Everywhere (only meaningful for [`FaultKind::ExtraLoss`] and
    /// [`FaultKind::ClockSkew`]).
    Global,
    Router(RouterId),
    Iface(IfaceId),
    Link(LinkId),
}

/// The failure modes the substrate can inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Additional per-crossing drop probability on the scoped link(s). The
    /// old global `fault_drop_prob` knob is this kind at
    /// [`FaultScope::Global`].
    ExtraLoss { prob: f64 },
    /// The scoped interface stops sourcing ICMP (an ACL or filter change):
    /// probes expiring there are silently eaten. Forwarding is unaffected.
    IfaceSilence,
    /// The scoped router is down for the event window (no forwarding, no
    /// ICMP), then forwards but keeps its control plane busy — ICMP silent —
    /// for `rebuild_secs` after the window closes (FIB rebuild).
    RouterReboot { rebuild_secs: i64 },
    /// Tighten ICMP rate limiting on the scoped router below its profile
    /// (the §5.2 artifact arriving mid-study).
    IcmpRateLimit { pps: f64, burst: f64 },
    /// Square-wave outage of the scoped link: `up_secs` up then `down_secs`
    /// down, repeating from the event start for its whole window.
    RouteFlap { up_secs: i64, down_secs: i64 },
    /// Responses from the scoped interface are sourced from `alias` instead
    /// of the configured address (renumbering): TSLP sees a mismatched
    /// responder and must treat the sample as visibility loss.
    Renumber { alias: Ipv4 },
    /// The VP hosted at the scoped router withdraws (§3 host churn). The
    /// substrate does not act on this; the measurement control loop polls
    /// [`FaultSchedule::vp_retired`].
    VpRetirement,
    /// Clock error at the scoped source router: every RTT it reports gains a
    /// constant offset.
    ClockSkew { ms: f64 },
    /// The measurement worker for the VP hosted at the scoped router crashes
    /// (panics) when it runs a round inside the window — a stand-in for the
    /// probing process dying on a hostile host. The substrate does not act
    /// on this; the round engine polls [`FaultSchedule::vp_panics`] and its
    /// supervisor turns the panic into quarantine instead of a dead run.
    VpPanic,
}

/// One timed fault: `kind` applied to `scope` over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub kind: FaultKind,
    pub scope: FaultScope,
    pub from: SimTime,
    /// Exclusive end of the window.
    pub until: SimTime,
}

impl FaultEvent {
    /// An event active for all of simulated time.
    pub fn always(kind: FaultKind, scope: FaultScope) -> Self {
        FaultEvent { kind, scope, from: SimTime::MIN, until: SimTime::MAX }
    }

    /// An event active over `[from, until)`.
    pub fn window(kind: FaultKind, scope: FaultScope, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty fault window");
        FaultEvent { kind, scope, from, until }
    }

    #[inline]
    fn active(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

impl FaultKind {
    /// One bit per variant, for the schedule's "does any event of this kind
    /// exist at all" fast path.
    fn bit(&self) -> u16 {
        match self {
            FaultKind::ExtraLoss { .. } => 1 << 0,
            FaultKind::IfaceSilence => 1 << 1,
            FaultKind::RouterReboot { .. } => 1 << 2,
            FaultKind::IcmpRateLimit { .. } => 1 << 3,
            FaultKind::RouteFlap { .. } => 1 << 4,
            FaultKind::Renumber { .. } => 1 << 5,
            FaultKind::VpRetirement => 1 << 6,
            FaultKind::ClockSkew { .. } => 1 << 7,
            FaultKind::VpPanic => 1 << 8,
        }
    }
}

/// A deterministic, seedable schedule of faults.
///
/// Queries are hot: the fluid fast path asks about every (link, bin) pair of
/// a multi-month study, so a chaos schedule on a country-scale topology (a
/// thousand-plus events) cannot be a linear scan per query. Events are
/// bucketed by scoped entity at `push` time — queries touch only the global
/// bucket plus the bucket(s) of the entity asked about, which chaos keeps at
/// O(1) events each. The buckets are derived state; semantically every query
/// is still a pure function of `(event list, t)`.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Indices into `events` with [`FaultScope::Global`].
    global: Vec<usize>,
    /// Indices bucketed by scoped entity id (entity ids are dense).
    by_router: Vec<Vec<usize>>,
    by_iface: Vec<Vec<usize>>,
    by_link: Vec<Vec<usize>>,
    /// Union of [`FaultKind::bit`] over all events.
    kinds: u16,
}

fn bucket(buckets: &mut Vec<Vec<usize>>, id: usize) -> &mut Vec<usize> {
    if buckets.len() <= id {
        buckets.resize_with(id + 1, Vec::new);
    }
    &mut buckets[id]
}

impl FaultSchedule {
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    pub fn push(&mut self, event: FaultEvent) {
        let idx = self.events.len();
        match event.scope {
            FaultScope::Global => self.global.push(idx),
            FaultScope::Router(r) => bucket(&mut self.by_router, r.0 as usize).push(idx),
            FaultScope::Iface(i) => bucket(&mut self.by_iface, i.0 as usize).push(idx),
            FaultScope::Link(l) => bucket(&mut self.by_link, l.0 as usize).push(idx),
        }
        self.kinds |= event.kind.bit();
        self.events.push(event);
    }

    /// All events in push order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    #[inline]
    fn has(&self, kind_bit: u16) -> bool {
        self.kinds & kind_bit != 0
    }

    /// Events that cover `router`: global plus router-scoped.
    #[inline]
    fn covering_router(&self, r: RouterId) -> impl Iterator<Item = &FaultEvent> {
        self.global
            .iter()
            .chain(self.by_router.get(r.0 as usize).into_iter().flatten())
            .map(|&i| &self.events[i])
    }

    /// Events that cover `iface`: global plus iface-scoped.
    #[inline]
    fn covering_iface(&self, i: IfaceId) -> impl Iterator<Item = &FaultEvent> {
        self.global
            .iter()
            .chain(self.by_iface.get(i.0 as usize).into_iter().flatten())
            .map(|&i| &self.events[i])
    }

    /// Events that cover `link`: global plus link-scoped.
    #[inline]
    fn covering_link(&self, l: LinkId) -> impl Iterator<Item = &FaultEvent> {
        self.global
            .iter()
            .chain(self.by_link.get(l.0 as usize).into_iter().flatten())
            .map(|&i| &self.events[i])
    }

    /// Extra drop probability on one crossing of `link` at `t` (summed over
    /// active [`FaultKind::ExtraLoss`] events covering the link).
    pub fn extra_loss(&self, link: LinkId, t: SimTime) -> f64 {
        if !self.has(FaultKind::ExtraLoss { prob: 0.0 }.bit()) {
            return 0.0;
        }
        self.covering_link(link)
            .filter(|e| e.active(t))
            .map(|e| match e.kind {
                FaultKind::ExtraLoss { prob } => prob,
                _ => 0.0,
            })
            .sum()
    }

    /// Is `link` hard-down at `t`? True inside the down phase of a covering
    /// [`FaultKind::RouteFlap`], or while either endpoint router is in the
    /// down window of a [`FaultKind::RouterReboot`].
    pub fn link_blocked(&self, topo: &Topology, link: LinkId, t: SimTime) -> bool {
        if self.has(FaultKind::RouteFlap { up_secs: 0, down_secs: 0 }.bit()) {
            for e in self.covering_link(link) {
                if let FaultKind::RouteFlap { up_secs, down_secs } = e.kind {
                    if e.active(t) {
                        let phase = (t - e.from).rem_euclid((up_secs + down_secs).max(1));
                        if phase >= up_secs {
                            return true;
                        }
                    }
                }
            }
        }
        if self.has(FaultKind::RouterReboot { rebuild_secs: 0 }.bit()) {
            // Router-scoped reboots only: a reboot blocks the links incident
            // to the rebooting router, which a global scope does not name.
            let l = topo.link(link);
            for r in [topo.iface(l.ifaces[0]).router, topo.iface(l.ifaces[1]).router] {
                let down = self
                    .by_router
                    .get(r.0 as usize)
                    .into_iter()
                    .flatten()
                    .map(|&i| &self.events[i])
                    .any(|e| matches!(e.kind, FaultKind::RouterReboot { .. }) && e.active(t));
                if down {
                    return true;
                }
            }
        }
        false
    }

    /// Is `router` inside a reboot's down window at `t`?
    pub fn router_down(&self, router: RouterId, t: SimTime) -> bool {
        self.has(FaultKind::RouterReboot { rebuild_secs: 0 }.bit())
            && self.covering_router(router).any(|e| {
                matches!(e.kind, FaultKind::RouterReboot { .. }) && e.active(t)
            })
    }

    /// Is ICMP generation at `router` suppressed at `t`? True through a
    /// reboot's down window *and* its FIB-rebuild tail.
    pub fn icmp_suppressed(&self, router: RouterId, t: SimTime) -> bool {
        if !self.has(FaultKind::RouterReboot { rebuild_secs: 0 }.bit()) {
            return false;
        }
        self.covering_router(router).any(|e| match e.kind {
            FaultKind::RouterReboot { rebuild_secs } => {
                e.from <= t && t < e.until.saturating_add(rebuild_secs)
            }
            _ => false,
        })
    }

    /// The tightest injected ICMP rate limit on `router` at `t`, if any.
    /// Callers combine it with the router's own profile by taking the
    /// smaller pps.
    pub fn icmp_limit(&self, router: RouterId, t: SimTime) -> Option<(f64, f64)> {
        if !self.has(FaultKind::IcmpRateLimit { pps: 0.0, burst: 0.0 }.bit()) {
            return None;
        }
        self.covering_router(router)
            .filter(|e| e.active(t))
            .filter_map(|e| match e.kind {
                FaultKind::IcmpRateLimit { pps, burst } => Some((pps, burst)),
                _ => None,
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// Is the scoped interface silent at `t`?
    pub fn iface_silent(&self, iface: IfaceId, t: SimTime) -> bool {
        self.has(FaultKind::IfaceSilence.bit())
            && self.covering_iface(iface).any(|e| {
                matches!(e.kind, FaultKind::IfaceSilence) && e.active(t)
            })
    }

    /// Is the interface holding `addr` silent at `t`? False for addresses
    /// that are not interface addresses (host-prefix space).
    pub fn silent_addr(&self, topo: &Topology, addr: Ipv4, t: SimTime) -> bool {
        if !self.has(FaultKind::IfaceSilence.bit()) {
            return false;
        }
        topo.iface_by_addr(addr)
            .is_some_and(|i| self.iface_silent(i.id, t))
    }

    /// Source address a response from the interface holding `addr` carries
    /// at `t`: the renumbered alias when a [`FaultKind::Renumber`] event
    /// covers it, else `addr` unchanged.
    pub fn renumbered(&self, topo: &Topology, addr: Ipv4, t: SimTime) -> Ipv4 {
        if !self.has(FaultKind::Renumber { alias: Ipv4(0) }.bit()) {
            return addr;
        }
        let Some(iface) = topo.iface_by_addr(addr) else { return addr };
        // First covering event in push order wins, as for a linear scan.
        let mut first: Option<(usize, Ipv4)> = None;
        for bkt in [
            self.global.as_slice(),
            self.by_iface.get(iface.id.0 as usize).map_or(&[][..], Vec::as_slice),
        ] {
            for &i in bkt {
                let e = &self.events[i];
                if let FaultKind::Renumber { alias } = e.kind {
                    if e.active(t) && first.is_none_or(|(fi, _)| i < fi) {
                        first = Some((i, alias));
                    }
                }
            }
        }
        first.map_or(addr, |(_, alias)| alias)
    }

    /// Total clock-skew offset (ms) on RTTs reported by probes sourced at
    /// `router` at `t`.
    pub fn clock_skew_ms(&self, router: RouterId, t: SimTime) -> f64 {
        if !self.has(FaultKind::ClockSkew { ms: 0.0 }.bit()) {
            return 0.0;
        }
        self.covering_router(router)
            .filter(|e| e.active(t))
            .map(|e| match e.kind {
                FaultKind::ClockSkew { ms } => ms,
                _ => 0.0,
            })
            .sum()
    }

    /// Has the VP hosted at `router` withdrawn by `t`? (Retirement is
    /// one-way: true from the event start onward, ignoring `until`.)
    pub fn vp_retired(&self, router: RouterId, t: SimTime) -> bool {
        self.has(FaultKind::VpRetirement.bit())
            && self.covering_router(router).any(|e| {
                matches!(e.kind, FaultKind::VpRetirement) && t >= e.from
            })
    }

    /// Does the worker for the VP hosted at `router` panic if it runs a
    /// round at `t`?
    pub fn vp_panics(&self, router: RouterId, t: SimTime) -> bool {
        self.has(FaultKind::VpPanic.bit())
            && self.covering_router(router).any(|e| {
                matches!(e.kind, FaultKind::VpPanic) && e.active(t)
            })
    }

    /// Generate a chaos schedule over `[from, until)`: every fault kind,
    /// scattered across the topology with frequency scaled by `intensity`
    /// (0 = none; 1 = heavy). Deterministic in `(seed, intensity, topology,
    /// window)`. `vp_routers` are the host routers eligible for VP
    /// retirement.
    pub fn chaos(
        seed: u64,
        intensity: f64,
        topo: &Topology,
        vp_routers: &[RouterId],
        from: SimTime,
        until: SimTime,
    ) -> FaultSchedule {
        let mut s = FaultSchedule::new();
        if intensity <= 0.0 || until <= from {
            return s;
        }
        let span = until - from;
        let at = |u: f64| from + (u * span as f64) as i64;
        // Background path noise everywhere, for the whole window.
        s.push(FaultEvent::window(
            FaultKind::ExtraLoss { prob: 0.015 * intensity },
            FaultScope::Global,
            from,
            until,
        ));
        for r in &topo.routers {
            let rid = r.id.0 as u64;
            if noise::bernoulli(seed ^ 0xFA01, rid, 0, 0.15 * intensity) {
                let start = at(noise::uniform(seed ^ 0xFA02, rid, 0));
                let down = 120 + (noise::uniform(seed ^ 0xFA03, rid, 0) * 780.0) as i64;
                let rebuild = 300 + (noise::uniform(seed ^ 0xFA04, rid, 0) * 300.0) as i64;
                s.push(FaultEvent::window(
                    FaultKind::RouterReboot { rebuild_secs: rebuild },
                    FaultScope::Router(r.id),
                    start,
                    (start + down).min(until).max(start + 1),
                ));
            }
            if noise::bernoulli(seed ^ 0xFA05, rid, 0, 0.2 * intensity) {
                let start = at(noise::uniform(seed ^ 0xFA06, rid, 0));
                let dur = 7_200 + (noise::uniform(seed ^ 0xFA07, rid, 0) * 21_600.0) as i64;
                let pps = 5.0 + noise::uniform(seed ^ 0xFA08, rid, 0) * 45.0;
                s.push(FaultEvent::window(
                    FaultKind::IcmpRateLimit { pps, burst: 5.0 },
                    FaultScope::Router(r.id),
                    start,
                    (start + dur).min(until).max(start + 1),
                ));
            }
        }
        for ifc in topo.ifaces.iter().filter(|i| i.link.is_some()) {
            let iid = ifc.id.0 as u64;
            if noise::bernoulli(seed ^ 0xFA10, iid, 0, 0.10 * intensity) {
                let start = at(noise::uniform(seed ^ 0xFA11, iid, 0));
                let dur = 3_600 + (noise::uniform(seed ^ 0xFA12, iid, 0) * 10_800.0) as i64;
                s.push(FaultEvent::window(
                    FaultKind::IfaceSilence,
                    FaultScope::Iface(ifc.id),
                    start,
                    (start + dur).min(until).max(start + 1),
                ));
            }
            if noise::bernoulli(seed ^ 0xFA13, iid, 0, 0.05 * intensity) {
                let start = at(noise::uniform(seed ^ 0xFA14, iid, 0));
                // Alias in 192.168/16: guaranteed outside the 10/8 space the
                // scenario worlds number from, so it never collides with a
                // real interface.
                let alias = Ipv4(0xC0A8_0000 | (ifc.id.0 & 0xFFFF));
                s.push(FaultEvent::window(
                    FaultKind::Renumber { alias },
                    FaultScope::Iface(ifc.id),
                    start,
                    until,
                ));
            }
        }
        for l in &topo.links {
            let lid = l.id.0 as u64;
            if noise::bernoulli(seed ^ 0xFA20, lid, 0, 0.08 * intensity) {
                let start = at(noise::uniform(seed ^ 0xFA21, lid, 0));
                let dur = 1_800 + (noise::uniform(seed ^ 0xFA22, lid, 0) * 5_400.0) as i64;
                let up = 300 + (noise::uniform(seed ^ 0xFA23, lid, 0) * 600.0) as i64;
                let down = 30 + (noise::uniform(seed ^ 0xFA24, lid, 0) * 90.0) as i64;
                s.push(FaultEvent::window(
                    FaultKind::RouteFlap { up_secs: up, down_secs: down },
                    FaultScope::Link(l.id),
                    start,
                    (start + dur).min(until).max(start + 1),
                ));
            }
        }
        for (k, &r) in vp_routers.iter().enumerate() {
            let rid = r.0 as u64;
            if noise::bernoulli(seed ^ 0xFA30, rid, k as u64, 0.15 * intensity) {
                s.push(FaultEvent {
                    kind: FaultKind::VpRetirement,
                    scope: FaultScope::Router(r),
                    from: at(0.25 + 0.5 * noise::uniform(seed ^ 0xFA31, rid, k as u64)),
                    until: SimTime::MAX,
                });
            }
            if noise::bernoulli(seed ^ 0xFA32, rid, k as u64, 0.10 * intensity) {
                s.push(FaultEvent::window(
                    FaultKind::ClockSkew {
                        ms: 0.5 + 2.5 * noise::uniform(seed ^ 0xFA33, rid, k as u64),
                    },
                    FaultScope::Router(r),
                    from,
                    until,
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpProfile;
    use crate::queue::QueueModel;
    use crate::topo::{AsNumber, LinkKind};

    fn tiny_topo() -> Topology {
        let mut t = Topology::new();
        let r1 = t.add_router(AsNumber(10), "r1", "nyc", -5, IcmpProfile::default());
        let r2 = t.add_router(AsNumber(20), "r2", "nyc", -5, IcmpProfile::default());
        let r3 = t.add_router(AsNumber(20), "r3", "nyc", -5, IcmpProfile::default());
        let i1 = t.add_iface(r1, "10.0.0.1".parse().unwrap());
        let i2 = t.add_iface(r2, "10.0.0.2".parse().unwrap());
        let i3 = t.add_iface(r2, "10.0.1.1".parse().unwrap());
        let i4 = t.add_iface(r3, "10.0.1.2".parse().unwrap());
        t.connect(i1, i2, LinkKind::Interdomain, 1.0, 1000.0, QueueModel::default(), None, None);
        t.connect(i3, i4, LinkKind::Internal, 1.0, 1000.0, QueueModel::default(), None, None);
        t
    }

    #[test]
    fn extra_loss_scoping_and_windows() {
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::window(
            FaultKind::ExtraLoss { prob: 0.1 },
            FaultScope::Global,
            100,
            200,
        ));
        s.push(FaultEvent::always(
            FaultKind::ExtraLoss { prob: 0.05 },
            FaultScope::Link(LinkId(1)),
        ));
        assert_eq!(s.extra_loss(LinkId(0), 50), 0.0, "before the window");
        assert_eq!(s.extra_loss(LinkId(0), 150), 0.1);
        assert_eq!(s.extra_loss(LinkId(0), 200), 0.0, "until is exclusive");
        assert!((s.extra_loss(LinkId(1), 150) - 0.15).abs() < 1e-12, "scopes sum");
        assert_eq!(s.extra_loss(LinkId(1), 500), 0.05);
    }

    #[test]
    fn reboot_blocks_incident_links_then_suppresses_icmp() {
        let topo = tiny_topo();
        let mut s = FaultSchedule::new();
        // r2 (router index 1) reboots over [1000, 1300), rebuilds until 1900.
        s.push(FaultEvent::window(
            FaultKind::RouterReboot { rebuild_secs: 600 },
            FaultScope::Router(RouterId(1)),
            1000,
            1300,
        ));
        // Both links touch r2, so both are blocked during the down window.
        assert!(!s.link_blocked(&topo, LinkId(0), 999));
        assert!(s.link_blocked(&topo, LinkId(0), 1000));
        assert!(s.link_blocked(&topo, LinkId(1), 1299));
        assert!(!s.link_blocked(&topo, LinkId(0), 1300), "forwarding back after down");
        assert!(s.router_down(RouterId(1), 1100));
        assert!(!s.router_down(RouterId(1), 1300));
        // ICMP stays dark through the rebuild tail.
        assert!(s.icmp_suppressed(RouterId(1), 1100));
        assert!(s.icmp_suppressed(RouterId(1), 1899));
        assert!(!s.icmp_suppressed(RouterId(1), 1900));
        // Other routers unaffected.
        assert!(!s.icmp_suppressed(RouterId(0), 1100));
    }

    #[test]
    fn route_flap_square_wave() {
        let topo = tiny_topo();
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::window(
            FaultKind::RouteFlap { up_secs: 60, down_secs: 30 },
            FaultScope::Link(LinkId(0)),
            0,
            10_000,
        ));
        assert!(!s.link_blocked(&topo, LinkId(0), 0));
        assert!(!s.link_blocked(&topo, LinkId(0), 59));
        assert!(s.link_blocked(&topo, LinkId(0), 60));
        assert!(s.link_blocked(&topo, LinkId(0), 89));
        assert!(!s.link_blocked(&topo, LinkId(0), 90), "next up phase");
        assert!(s.link_blocked(&topo, LinkId(0), 90 + 60));
        // Other link unaffected; outside the window the flap stops.
        assert!(!s.link_blocked(&topo, LinkId(1), 60));
        assert!(!s.link_blocked(&topo, LinkId(0), 10_000 + 60));
    }

    #[test]
    fn icmp_limit_takes_tightest() {
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::always(
            FaultKind::IcmpRateLimit { pps: 50.0, burst: 10.0 },
            FaultScope::Router(RouterId(0)),
        ));
        s.push(FaultEvent::window(
            FaultKind::IcmpRateLimit { pps: 5.0, burst: 2.0 },
            FaultScope::Router(RouterId(0)),
            100,
            200,
        ));
        assert_eq!(s.icmp_limit(RouterId(0), 0), Some((50.0, 10.0)));
        assert_eq!(s.icmp_limit(RouterId(0), 150), Some((5.0, 2.0)));
        assert_eq!(s.icmp_limit(RouterId(1), 150), None);
    }

    #[test]
    fn silence_and_renumber_resolve_by_address() {
        let topo = tiny_topo();
        let addr: Ipv4 = "10.0.0.2".parse().unwrap();
        let alias: Ipv4 = "192.168.0.9".parse().unwrap();
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::window(FaultKind::IfaceSilence, FaultScope::Iface(IfaceId(1)), 0, 100));
        s.push(FaultEvent::window(
            FaultKind::Renumber { alias },
            FaultScope::Iface(IfaceId(1)),
            200,
            300,
        ));
        assert!(s.silent_addr(&topo, addr, 50));
        assert!(!s.silent_addr(&topo, addr, 100));
        assert!(!s.silent_addr(&topo, "10.0.0.1".parse().unwrap(), 50));
        // Non-interface (host-prefix) addresses are never silent.
        assert!(!s.silent_addr(&topo, "10.99.0.1".parse().unwrap(), 50));
        assert_eq!(s.renumbered(&topo, addr, 250), alias);
        assert_eq!(s.renumbered(&topo, addr, 150), addr, "outside the window");
        let other: Ipv4 = "10.0.0.1".parse().unwrap();
        assert_eq!(s.renumbered(&topo, other, 250), other, "unscoped iface unchanged");
    }

    #[test]
    fn retirement_is_one_way_and_skew_sums() {
        let mut s = FaultSchedule::new();
        s.push(FaultEvent {
            kind: FaultKind::VpRetirement,
            scope: FaultScope::Router(RouterId(2)),
            from: 500,
            until: SimTime::MAX,
        });
        s.push(FaultEvent::always(FaultKind::ClockSkew { ms: 1.5 }, FaultScope::Global));
        s.push(FaultEvent::always(FaultKind::ClockSkew { ms: 0.5 }, FaultScope::Router(RouterId(2))));
        assert!(!s.vp_retired(RouterId(2), 499));
        assert!(s.vp_retired(RouterId(2), 500));
        assert!(s.vp_retired(RouterId(2), i64::MAX - 1));
        assert!(!s.vp_retired(RouterId(0), 1000));
        assert!((s.clock_skew_ms(RouterId(2), 0) - 2.0).abs() < 1e-12);
        assert!((s.clock_skew_ms(RouterId(0), 0) - 1.5).abs() < 1e-12);
    }

    /// The scope buckets are an index, not a semantics change: every query
    /// must agree with a brute-force linear scan over the event list.
    #[test]
    fn bucketed_queries_match_linear_scan() {
        let topo = tiny_topo();
        let mut s = FaultSchedule::chaos(13, 1.0, &topo, &[RouterId(0), RouterId(2)], 0, 40_000);
        // Global-scoped events of every globally-meaningful kind, so the
        // global bucket participates in each query.
        s.push(FaultEvent::window(
            FaultKind::ExtraLoss { prob: 0.02 },
            FaultScope::Global,
            5_000,
            20_000,
        ));
        s.push(FaultEvent::window(FaultKind::ClockSkew { ms: 0.7 }, FaultScope::Global, 0, 30_000));
        s.push(FaultEvent::window(FaultKind::IfaceSilence, FaultScope::Global, 8_000, 9_000));
        s.push(FaultEvent::window(
            FaultKind::Renumber { alias: "192.168.9.9".parse().unwrap() },
            FaultScope::Iface(IfaceId(2)),
            2_000,
            12_000,
        ));

        let active = |e: &FaultEvent, t: SimTime| e.from <= t && t < e.until;
        let covers_router = |e: &FaultEvent, r: RouterId| {
            matches!(e.scope, FaultScope::Global) || e.scope == FaultScope::Router(r)
        };
        let covers_iface = |e: &FaultEvent, i: IfaceId| {
            matches!(e.scope, FaultScope::Global) || e.scope == FaultScope::Iface(i)
        };
        let covers_link = |e: &FaultEvent, l: LinkId| {
            matches!(e.scope, FaultScope::Global) || e.scope == FaultScope::Link(l)
        };

        for t in (0..45_000).step_by(371) {
            for l in [LinkId(0), LinkId(1)] {
                let loss: f64 = s
                    .events()
                    .iter()
                    .filter(|e| active(e, t) && covers_link(e, l))
                    .map(|e| match e.kind {
                        FaultKind::ExtraLoss { prob } => prob,
                        _ => 0.0,
                    })
                    .sum();
                assert!((s.extra_loss(l, t) - loss).abs() < 1e-12, "extra_loss {l:?} t={t}");

                let blocked = s.events().iter().any(|e| match e.kind {
                    FaultKind::RouteFlap { up_secs, down_secs }
                        if active(e, t) && covers_link(e, l) =>
                    {
                        (t - e.from).rem_euclid((up_secs + down_secs).max(1)) >= up_secs
                    }
                    FaultKind::RouterReboot { .. } => match e.scope {
                        FaultScope::Router(r) if active(e, t) => {
                            let lk = topo.link(l);
                            topo.iface(lk.ifaces[0]).router == r
                                || topo.iface(lk.ifaces[1]).router == r
                        }
                        _ => false,
                    },
                    _ => false,
                });
                assert_eq!(s.link_blocked(&topo, l, t), blocked, "link_blocked {l:?} t={t}");
            }

            for r in [RouterId(0), RouterId(1), RouterId(2)] {
                let down = s.events().iter().any(|e| {
                    matches!(e.kind, FaultKind::RouterReboot { .. })
                        && covers_router(e, r)
                        && active(e, t)
                });
                assert_eq!(s.router_down(r, t), down, "router_down {r:?} t={t}");

                let suppressed = s.events().iter().any(|e| match e.kind {
                    FaultKind::RouterReboot { rebuild_secs } => {
                        covers_router(e, r)
                            && e.from <= t
                            && t < e.until.saturating_add(rebuild_secs)
                    }
                    _ => false,
                });
                assert_eq!(s.icmp_suppressed(r, t), suppressed, "icmp_suppressed {r:?} t={t}");

                let limit = s
                    .events()
                    .iter()
                    .filter(|e| active(e, t) && covers_router(e, r))
                    .filter_map(|e| match e.kind {
                        FaultKind::IcmpRateLimit { pps, burst } => Some((pps, burst)),
                        _ => None,
                    })
                    .min_by(|a, b| a.0.total_cmp(&b.0));
                assert_eq!(s.icmp_limit(r, t), limit, "icmp_limit {r:?} t={t}");

                let skew: f64 = s
                    .events()
                    .iter()
                    .filter(|e| active(e, t) && covers_router(e, r))
                    .map(|e| match e.kind {
                        FaultKind::ClockSkew { ms } => ms,
                        _ => 0.0,
                    })
                    .sum();
                assert!((s.clock_skew_ms(r, t) - skew).abs() < 1e-12, "clock_skew {r:?} t={t}");

                let retired = s.events().iter().any(|e| {
                    matches!(e.kind, FaultKind::VpRetirement) && covers_router(e, r) && t >= e.from
                });
                assert_eq!(s.vp_retired(r, t), retired, "vp_retired {r:?} t={t}");
            }

            for i in [IfaceId(0), IfaceId(1), IfaceId(2), IfaceId(3)] {
                let silent = s.events().iter().any(|e| {
                    matches!(e.kind, FaultKind::IfaceSilence) && covers_iface(e, i) && active(e, t)
                });
                assert_eq!(s.iface_silent(i, t), silent, "iface_silent {i:?} t={t}");

                let addr = topo.iface(i).addr;
                let renum = s
                    .events()
                    .iter()
                    .find_map(|e| match e.kind {
                        FaultKind::Renumber { alias } if active(e, t) && covers_iface(e, i) => {
                            Some(alias)
                        }
                        _ => None,
                    })
                    .unwrap_or(addr);
                assert_eq!(s.renumbered(&topo, addr, t), renum, "renumbered {i:?} t={t}");
            }
        }
    }

    #[test]
    fn chaos_is_deterministic_and_scales_with_intensity() {
        let topo = tiny_topo();
        let vps = [RouterId(0)];
        let a = FaultSchedule::chaos(7, 1.0, &topo, &vps, 0, 86_400);
        let b = FaultSchedule::chaos(7, 1.0, &topo, &vps, 0, 86_400);
        assert_eq!(a.events(), b.events(), "same seed reproduces bit-for-bit");
        let c = FaultSchedule::chaos(8, 1.0, &topo, &vps, 0, 86_400);
        assert_ne!(a.events(), c.events(), "different seed differs");
        assert!(FaultSchedule::chaos(7, 0.0, &topo, &vps, 0, 86_400).is_empty());
        // Intensity monotonicity over a pool of seeds (event draws share the
        // same uniforms, so per-seed counts can only grow with intensity).
        for seed in 0..20 {
            let lo = FaultSchedule::chaos(seed, 0.2, &topo, &vps, 0, 86_400).len();
            let hi = FaultSchedule::chaos(seed, 1.0, &topo, &vps, 0, 86_400).len();
            assert!(hi >= lo, "seed {seed}: {hi} < {lo}");
        }
        // All chaos windows sit inside the requested horizon (retirements
        // are open-ended by design).
        for e in a.events() {
            assert!(e.from >= 0 && e.from < 86_400, "{e:?}");
            if !matches!(e.kind, FaultKind::VpRetirement) {
                assert!(e.until <= 86_400, "{e:?}");
            }
        }
    }
}
