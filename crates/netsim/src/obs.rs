//! Per-subsystem metric handles for the simulator's hot path.
//!
//! `send_probe` runs millions of times per experiment, so handles are
//! created once (first probe) and cached in a `OnceLock`; every increment
//! after that is a single relaxed atomic add. Names follow the
//! `manic_netsim_<name>` convention; probe drop reasons are a labeled
//! family so the conservation invariant
//! `probes_sent == echo_reply + time_exceeded + unroutable + Σ dropped{reason}`
//! can be checked by summing the `manic_netsim_probe_dropped` prefix.

use manic_obs::{registry, Counter};
use std::sync::OnceLock;

pub(crate) struct Metrics {
    /// Probes injected via `Network::send_probe`.
    pub probes_sent: Counter,
    /// Terminal outcomes.
    pub echo_reply: Counter,
    pub time_exceeded: Counter,
    pub unroutable: Counter,
    /// `ProbeStatus::Lost` broken down by drop site (see conservation note).
    pub drop_zero_ttl: Counter,
    pub drop_silent_addr: Counter,
    pub drop_icmp_denied: Counter,
    pub drop_forward_loss: Counter,
    pub drop_reply_lost: Counter,
    pub drop_routing_loop: Counter,
    /// Link crossings that delivered the packet (forward and reply legs).
    pub packets_forwarded: Counter,
    /// Crossings refused because fault injection blacked out the link.
    pub fault_link_blocked: Counter,
    /// ICMP generation outcomes at routers.
    pub icmp_generated: Counter,
    pub icmp_suppressed_fault: Counter,
    pub icmp_unresponsive: Counter,
    pub icmp_flaky_drop: Counter,
    pub icmp_rate_limited: Counter,
    pub icmp_slow_path: Counter,
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = registry();
        let drop = |reason| r.counter_labeled("manic_netsim_probe_dropped", &[("reason", reason)]);
        Metrics {
            probes_sent: r.counter("manic_netsim_probes_sent"),
            echo_reply: r.counter("manic_netsim_probe_echo_reply"),
            time_exceeded: r.counter("manic_netsim_probe_time_exceeded"),
            unroutable: r.counter("manic_netsim_probe_unroutable"),
            drop_zero_ttl: drop("zero_ttl"),
            drop_silent_addr: drop("silent_addr"),
            drop_icmp_denied: drop("icmp_denied"),
            drop_forward_loss: drop("forward_loss"),
            drop_reply_lost: drop("reply_lost"),
            drop_routing_loop: drop("routing_loop"),
            packets_forwarded: r.counter("manic_netsim_packets_forwarded"),
            fault_link_blocked: r.counter("manic_netsim_fault_link_blocked"),
            icmp_generated: r.counter("manic_netsim_icmp_generated"),
            icmp_suppressed_fault: r.counter("manic_netsim_icmp_suppressed_fault"),
            icmp_unresponsive: r.counter("manic_netsim_icmp_unresponsive"),
            icmp_flaky_drop: r.counter("manic_netsim_icmp_flaky_drop"),
            icmp_rate_limited: r.counter("manic_netsim_icmp_rate_limited"),
            icmp_slow_path: r.counter("manic_netsim_icmp_slow_path"),
        }
    })
}
