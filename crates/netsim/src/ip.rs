//! IPv4 addresses and prefixes.
//!
//! The simulator hands out addresses from the RFC 1918 10.0.0.0/8 block so a
//! trace accidentally leaking into logs can never be confused with a real
//! Internet address.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address, stored as its 32-bit big-endian integer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    pub const UNSPECIFIED: Ipv4 = Ipv4(0);

    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Address parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or prefix: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4 {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in &mut octets {
            *o = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| AddrParseError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// A CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: Ipv4,
    len: u8,
}

impl Prefix {
    /// Create a prefix; the address is masked to the prefix length so
    /// `10.1.2.3/16` normalizes to `10.1.0.0/16`.
    pub fn new(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Prefix { addr: Ipv4(addr.0 & Self::mask(len)), len }
    }

    /// Host route for a single address.
    pub fn host(addr: Ipv4) -> Self {
        Prefix::new(addr, 32)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    pub fn addr(&self) -> Ipv4 {
        self.addr
    }

    /// The mask length; a `/0` is the (non-empty) default route, so there
    /// is deliberately no `is_empty` counterpart.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    pub fn contains(&self, ip: Ipv4) -> bool {
        (ip.0 & Self::mask(self.len)) == self.addr.0
    }

    /// True when `other` is fully inside `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// The `i`-th address inside the prefix (panics if out of range).
    pub fn nth(&self, i: u32) -> Ipv4 {
        let size = self.size();
        assert!((i as u64) < size, "address index {i} out of /{} prefix", self.len);
        Ipv4(self.addr.0 + i)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or_else(|| AddrParseError(s.to_string()))?;
        let addr: Ipv4 = a.parse()?;
        let len: u8 = l.parse().map_err(|_| AddrParseError(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse() {
        let ip: Ipv4 = "10.1.2.3".parse().unwrap();
        assert_eq!(ip, Ipv4::new(10, 1, 2, 3));
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert!("10.1.2".parse::<Ipv4>().is_err());
        assert!("10.1.2.3.4".parse::<Ipv4>().is_err());
        assert!("10.1.2.999".parse::<Ipv4>().is_err());
    }

    #[test]
    fn prefix_normalizes() {
        let p: Prefix = "10.1.2.3/16".parse().unwrap();
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn contains_boundaries() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains("10.1.0.0".parse().unwrap()));
        assert!(p.contains("10.1.255.255".parse().unwrap()));
        assert!(!p.contains("10.2.0.0".parse().unwrap()));
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains("255.255.255.255".parse().unwrap()));
    }

    #[test]
    fn covers_nesting() {
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let p24: Prefix = "10.1.5.0/24".parse().unwrap();
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p16.covers(&p16));
    }

    #[test]
    fn nth_and_size() {
        let p: Prefix = "10.1.5.0/24".parse().unwrap();
        assert_eq!(p.size(), 256);
        assert_eq!(p.nth(0).to_string(), "10.1.5.0");
        assert_eq!(p.nth(255).to_string(), "10.1.5.255");
        let host = Prefix::host("10.0.0.1".parse().unwrap());
        assert_eq!(host.size(), 1);
        assert!(host.contains("10.0.0.1".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "address index")]
    fn nth_out_of_range_panics() {
        let p: Prefix = "10.1.5.0/30".parse().unwrap();
        p.nth(4);
    }
}
