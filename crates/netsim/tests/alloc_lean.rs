//! Allocation-lean hot path: after warm-up, the per-probe machinery —
//! `send_probe`, `forward_path_into`, `record_route_into` — must not touch
//! the allocator at all. A counting global allocator makes the assertion
//! exact. This test lives in its own integration binary so the allocator
//! swap cannot interfere with any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use manic_netsim::{
    AsNumber, DiurnalDemand, Fib, IcmpProfile, Ipv4, LinkKind, Network, Prefix, ProbeSpec,
    QueueModel, SimState, Topology,
};

/// Counts allocator entry points on the test thread only; frees are not
/// interesting here. The per-thread gate matters: the libtest harness's
/// main thread blocks in `mpsc::recv` while the test runs, and lazily
/// allocates its thread-local parking context whenever the scheduler makes
/// it actually park — which would otherwise land in our timed window or
/// not, at the OS's whim (a 2-allocation flake).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Const-initialized so TLS access never allocates (no lazy init, no drop).
thread_local! {
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count() {
    // try_with: TLS may be unavailable during thread teardown; those
    // allocations are never ours to count.
    if COUNTING.try_with(std::cell::Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A 4-router chain — vp ─ r1 ─ r2 ─ dst — with symmetric routes, a loaded
/// middle link, and a rate-limited far router (so the limiter bucket path is
/// exercised, not just skipped).
fn chain_net() -> Network {
    let mut topo = Topology::new();
    let q = QueueModel::default();
    let limited = IcmpProfile { rate_limit_pps: Some(1000.0), ..Default::default() };
    let vp = topo.add_router(AsNumber(64500), "vp", "nyc", -5, IcmpProfile::default());
    let r1 = topo.add_router(AsNumber(64500), "r1", "nyc", -5, IcmpProfile::default());
    let r2 = topo.add_router(AsNumber(64501), "r2", "nyc", -5, limited);
    let dst = topo.add_router(AsNumber(64501), "dst", "nyc", -5, IcmpProfile::default());

    let a = |o: u8, h: u8| Ipv4::new(10, 0, o, h);
    let vp0 = topo.add_iface(vp, a(0, 1));
    let r1a = topo.add_iface(r1, a(0, 2));
    let r1b = topo.add_iface(r1, a(1, 1));
    let r2a = topo.add_iface(r2, a(1, 2));
    let r2b = topo.add_iface(r2, a(2, 1));
    let dst0 = topo.add_iface(dst, a(2, 2));

    let load: Arc<dyn manic_netsim::LoadModel> = Arc::new(DiurnalDemand::quiet(-5, 7));
    topo.connect(vp0, r1a, LinkKind::Internal, 1.0, 10_000.0, q, None, None);
    topo.connect(
        r1b,
        r2a,
        LinkKind::Interdomain,
        2.0,
        10_000.0,
        q,
        Some(load.clone()),
        Some(load),
    );
    topo.connect(r2b, dst0, LinkKind::Internal, 1.0, 10_000.0, q, None, None);

    let p24 = |o: u8| Prefix::new(a(o, 0), 24);
    let mut fibs = vec![Fib::new(), Fib::new(), Fib::new(), Fib::new()];
    fibs[vp.0 as usize].insert(Prefix::new(Ipv4::new(0, 0, 0, 0), 0), vec![vp0]);
    fibs[r1.0 as usize].insert(p24(0), vec![r1a]);
    fibs[r1.0 as usize].insert(p24(1), vec![r1b]);
    fibs[r1.0 as usize].insert(p24(2), vec![r1b]);
    fibs[r2.0 as usize].insert(p24(0), vec![r2a]);
    fibs[r2.0 as usize].insert(p24(1), vec![r2a]);
    fibs[r2.0 as usize].insert(p24(2), vec![r2b]);
    fibs[dst.0 as usize].insert(Prefix::new(Ipv4::new(0, 0, 0, 0), 0), vec![dst0]);
    Network::new(topo, fibs, 0x00A1_10C8)
}

#[test]
fn steady_state_probing_allocates_nothing() {
    COUNTING.with(|c| c.set(true));
    let net = chain_net();
    let vp = manic_netsim::RouterId(0);
    let vp_addr = Ipv4::new(10, 0, 0, 1);
    let far = Ipv4::new(10, 0, 2, 2);
    let mut state = SimState::new();
    let mut path = Vec::new();
    let mut slots = Vec::new();

    let drive = |state: &mut SimState, path: &mut Vec<_>, slots: &mut Vec<_>, t0: i64| {
        let mut answered = 0u32;
        for i in 0..200i64 {
            let t = t0 + i * 7;
            let spec = ProbeSpec {
                src: vp,
                src_addr: vp_addr,
                dst: far,
                ttl: 2,
                flow_id: 0xBEEF,
            };
            if !matches!(net.send_probe(state, spec, t), manic_netsim::ProbeStatus::Lost) {
                answered += 1;
            }
            net.forward_path_into(vp, far, 0xBEEF, t, path);
            assert_eq!(path.len(), 3, "chain walk sees r1, r2, dst");
            assert!(net.record_route_into(state, vp, vp_addr, far, 2, 0xBEEF, t, slots));
            assert!(!slots.is_empty());
        }
        answered
    };

    // Warm-up: populates rate-limiter buckets, OnceLock'd metrics, and the
    // scratch/walk buffers' high-water marks.
    drive(&mut state, &mut path, &mut slots, 0);

    let before = allocs();
    let answered = drive(&mut state, &mut path, &mut slots, 100_000);
    let delta = allocs() - before;

    assert!(answered > 0, "probes must actually complete for the test to mean anything");
    assert_eq!(
        delta, 0,
        "steady-state probe loop hit the allocator {delta} times; \
         the hot path must reuse SimState scratch buffers"
    );
}
