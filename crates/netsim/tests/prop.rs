//! Property-based tests for netsim invariants.

use manic_netsim::fib::ecmp_pick;
use manic_netsim::time;
use manic_netsim::{Fib, IfaceId, Ipv4, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4(a), l))
}

/// Reference LPM: linear scan over all routes.
fn linear_lpm(routes: &[(Prefix, Vec<IfaceId>)], dst: Ipv4) -> Option<&[IfaceId]> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(dst))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, nh)| nh.as_slice())
}

proptest! {
    /// The trie agrees with a brute-force longest-prefix match.
    #[test]
    fn trie_matches_linear_scan(
        routes in prop::collection::vec((arb_prefix(), 0u32..64), 1..40),
        dsts in prop::collection::vec(any::<u32>(), 1..32),
    ) {
        // Deduplicate by prefix: the trie replaces, the reference must too.
        let mut map = std::collections::HashMap::new();
        for (p, ifidx) in routes {
            map.insert(p, vec![IfaceId(ifidx)]);
        }
        let routes: Vec<(Prefix, Vec<IfaceId>)> = map.into_iter().collect();
        let mut fib = Fib::new();
        for (p, nh) in &routes {
            fib.insert(*p, nh.clone());
        }
        prop_assert_eq!(fib.len(), routes.len());
        for d in dsts {
            let dst = Ipv4(d);
            let got = fib.lookup(dst);
            let expected = linear_lpm(&routes, dst);
            prop_assert_eq!(got, expected, "dst {}", dst);
        }
    }

    /// ECMP choice is a pure function of (flow, src, dst, salt) and stays in
    /// the group.
    #[test]
    fn ecmp_stable_member(
        members in prop::collection::vec(0u32..1000, 1..8),
        flow in any::<u16>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        salt in any::<u64>(),
    ) {
        let group: Vec<IfaceId> = members.iter().map(|&m| IfaceId(m)).collect();
        let a = ecmp_pick(&group, flow, Ipv4(src), Ipv4(dst), salt);
        let b = ecmp_pick(&group, flow, Ipv4(src), Ipv4(dst), salt);
        prop_assert_eq!(a, b);
        prop_assert!(group.contains(&a));
    }

    /// Calendar roundtrip over the full study window and beyond.
    #[test]
    fn calendar_roundtrip(day in -400i64..1200, secs in 0i64..86_400) {
        let t = day * 86_400 + secs;
        let d = time::sim_to_date(t);
        let midnight = time::date_to_sim(d);
        prop_assert_eq!(midnight, day * 86_400);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    /// month_start(month_index(t)) <= t for all t in the study period.
    #[test]
    fn month_start_bounds(t in 0i64..63_072_000) {
        let m = time::month_index(t);
        prop_assert!(time::month_start(m) <= t);
        prop_assert!(time::month_start(m + 1) > t);
    }

    /// Prefix::contains is consistent with covers.
    #[test]
    fn covers_implies_contains(p in arb_prefix(), q in arb_prefix(), x in any::<u32>()) {
        if p.covers(&q) && q.contains(Ipv4(x)) {
            prop_assert!(p.contains(Ipv4(x)));
        }
    }
}
