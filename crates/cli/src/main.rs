//! `manic` — command-line interface to the measurement system.
//!
//! ```text
//! manic world [--world toy|us] [--seed N]              # topology summary
//! manic links --vp <name> [--world ..] [--seed N]      # run bdrmap, list links
//! manic watch --vp <name> --days D [--world ..]        # live dashboard after D days
//! manic study --days D [--world ..] [--seed N]         # longitudinal day-link report
//! manic export --vp <name> --hours H [--format json|csv]  # raw TSLP series dump
//! manic inspect [--days D] [--world ..]                # evidence dossiers (sec. 4.2)
//! manic obs metrics [--hours H] [--format prom|json]   # run pipeline, dump metrics
//! manic obs journal [--filter S] [--hours H]           # structured event journal
//! manic obs explain <far-ip> [--hours H]               # audit trail for one link
//! manic obs links [--hours H]                          # links with audit records
//! manic serve [--addr H:P] [--hours H] [--snapshot-interval S]  # HTTP API
//! manic run [--hours H] [--data-dir D] [--durability P] [--resume]  # headless run
//! manic recover <data-dir>                             # inspect a checkpoint
//! ```
//!
//! `manic run` and `manic serve` accept `--data-dir <dir>` to persist every
//! sample through the tsdb write-ahead log and checkpoint full system state
//! every `--checkpoint-every` rounds (fsync cadence from `--durability
//! always|every-<n>|never`). `--resume` restores the last checkpoint from
//! the same directory and re-executes deterministically to catch up;
//! `manic recover <dir>` reports what such a resume would restore without
//! touching anything.
//!
//! Global flags: `--verbosity trace|debug|info|warn|error` controls both the
//! journal floor and the stderr echo; `--quiet` silences the stderr echo
//! entirely. Without either, the CLI echoes warnings and errors only.
//! `--threads N` sizes the round-engine pool (results are byte-identical at
//! any count) and `--summary-window-days D` sets the detection window the
//! incremental link summaries keep resident (default 30).
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); every command is deterministic given `--seed`.

use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, format_sim, Date, SECS_PER_DAY};
use manic_tsdb::TagSet;
use std::fmt;
use std::process::ExitCode;

/// Everything that can go wrong between argv and a finished command. The
/// workspace carries no error-handling dependency, so this small enum is
/// the whole story: every failure path surfaces here instead of panicking.
#[derive(Debug)]
enum CliError {
    MissingCommand,
    UnknownCommand(String),
    MissingValue(String),
    UnknownFlag(String),
    InvalidValue { flag: &'static str, reason: String },
    UnknownWorld(String),
    MissingVp,
    UnknownVp(String),
    UnknownFormat(String),
    EmptyCycle(String),
    MissingSubcommand(&'static str),
    UnknownSubcommand { cmd: &'static str, sub: String },
    UnexpectedArg(String),
    UnknownLevel(String),
    NoAuditRecords { link: String, known: Vec<String> },
    ServerStart { addr: String, reason: String },
    Durability(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing command"),
            CliError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            CliError::InvalidValue { flag, reason } => write!(f, "{flag}: {reason}"),
            CliError::UnknownWorld(w) => write!(
                f,
                "unknown world '{w}' (library: {})",
                manic_worldgen::library_names().join(", ")
            ),
            CliError::MissingVp => write!(f, "--vp required"),
            CliError::UnknownVp(vp) => write!(f, "unknown VP '{vp}' (try `manic world`)"),
            CliError::UnknownFormat(fmt) => write!(f, "unknown format '{fmt}' (json|csv)"),
            CliError::EmptyCycle(vp) => {
                write!(f, "bdrmap cycle for '{vp}' produced no links")
            }
            CliError::MissingSubcommand(cmd) => {
                write!(f, "'{cmd}' needs a subcommand (try `manic {cmd} metrics`)")
            }
            CliError::UnknownSubcommand { cmd, sub } => {
                write!(f, "unknown '{cmd}' subcommand '{sub}'")
            }
            CliError::UnexpectedArg(a) => write!(f, "unexpected argument '{a}'"),
            CliError::UnknownLevel(l) => {
                write!(f, "unknown level '{l}' (trace|debug|info|warn|error)")
            }
            CliError::NoAuditRecords { link, known } => {
                write!(f, "no audit records for link '{link}'")?;
                if !known.is_empty() {
                    write!(f, "; links with records: {}", known.join(", "))?;
                }
                Ok(())
            }
            CliError::ServerStart { addr, reason } => {
                write!(f, "cannot serve on {addr}: {reason}")
            }
            CliError::Durability(reason) => write!(f, "durability: {reason}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Default simulated start for CLI runs (inside the study window).
fn t0() -> i64 {
    date_to_sim(Date::new(2017, 3, 1))
}

struct Args {
    world: String,
    seed: u64,
    vp: Option<String>,
    days: i64,
    hours: i64,
    format: String,
    /// Positional arguments after the command (subcommand, link IP, ...).
    positional: Vec<String>,
    /// `--verbosity <level>`: journal floor + stderr echo level.
    verbosity: Option<manic_obs::Level>,
    /// `--quiet`: no stderr echo at all.
    quiet: bool,
    /// `--filter <substring>`: journal dump filter (event name or target).
    filter: Option<String>,
    /// `manic serve`: listen address.
    addr: String,
    /// `manic serve`: wall-clock seconds between snapshot publishes.
    snapshot_interval: u64,
    /// `--data-dir <dir>`: persist WAL + checkpoints here (run/serve).
    data_dir: Option<String>,
    /// `--durability always|every-<n>|never`: WAL fsync policy.
    durability: String,
    /// `--checkpoint-every <rounds>`: rounds between checkpoints.
    checkpoint_every: u64,
    /// `--resume`: restore the last checkpoint from `--data-dir`.
    resume: bool,
    /// `--threads N`: round-engine worker threads (default: all cores).
    threads: usize,
    /// `--storage-faults <seed>:<kinds|all>`: inject disk faults into the
    /// durable layer (torture harness; kinds are `eio+enospc+torn+lie+flip`).
    storage_faults: Option<String>,
    /// `manic world --stats`: print generator statistics (tier histogram,
    /// determinism fingerprint) instead of the VP roster.
    stats: bool,
    /// `manic serve --max-conns N`: open-connection budget (0 = unlimited).
    max_conns: usize,
    /// `manic serve --request-timeout S`: header-read deadline in seconds.
    request_timeout: u64,
    /// `manic serve --shed-queue-depth N`: accept-queue depth beyond which
    /// non-priority requests are shed (0 disables depth-based shedding).
    shed_queue_depth: usize,
    /// `--summary-window-days D`: detection window the incremental link
    /// summaries keep resident (default 30 days = 8640 five-minute bins).
    summary_window_days: usize,
}

impl Args {
    fn parse(mut argv: impl Iterator<Item = String>) -> Result<(String, Args), CliError> {
        let cmd = argv.next().ok_or(CliError::MissingCommand)?;
        let mut args = Args {
            world: "toy".into(),
            seed: 42,
            vp: None,
            days: 60,
            hours: 24,
            format: "csv".into(),
            positional: Vec::new(),
            verbosity: None,
            quiet: false,
            filter: None,
            addr: "127.0.0.1:8379".into(),
            snapshot_interval: 2,
            data_dir: None,
            durability: "every-64".into(),
            checkpoint_every: 12,
            resume: false,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            storage_faults: None,
            stats: false,
            max_conns: manic_serve::OverloadConfig::default().max_conns,
            request_timeout: 2,
            shed_queue_depth: manic_serve::OverloadConfig::default().shed_queue_depth,
            summary_window_days: 30,
        };
        while let Some(flag) = argv.next() {
            let mut val = || argv.next().ok_or_else(|| CliError::MissingValue(flag.clone()));
            fn num<T: std::str::FromStr>(flag: &'static str, v: String) -> Result<T, CliError>
            where
                T::Err: fmt::Display,
            {
                v.parse()
                    .map_err(|e: T::Err| CliError::InvalidValue { flag, reason: e.to_string() })
            }
            match flag.as_str() {
                "--world" => args.world = val()?,
                "--seed" => args.seed = num("--seed", val()?)?,
                "--vp" => args.vp = Some(val()?),
                "--days" => args.days = num("--days", val()?)?,
                "--hours" => args.hours = num("--hours", val()?)?,
                "--format" => args.format = val()?,
                "--filter" => args.filter = Some(val()?),
                "--addr" => args.addr = val()?,
                "--snapshot-interval" => {
                    args.snapshot_interval = num("--snapshot-interval", val()?)?
                }
                "--max-conns" => args.max_conns = num("--max-conns", val()?)?,
                "--request-timeout" => {
                    args.request_timeout = num("--request-timeout", val()?)?
                }
                "--shed-queue-depth" => {
                    args.shed_queue_depth = num("--shed-queue-depth", val()?)?
                }
                "--data-dir" => args.data_dir = Some(val()?),
                "--durability" => args.durability = val()?,
                "--checkpoint-every" => {
                    args.checkpoint_every = num("--checkpoint-every", val()?)?
                }
                "--resume" => args.resume = true,
                "--stats" => args.stats = true,
                "--storage-faults" => args.storage_faults = Some(val()?),
                "--threads" => args.threads = num("--threads", val()?)?,
                "--summary-window-days" => {
                    args.summary_window_days = num("--summary-window-days", val()?)?
                }
                "--quiet" => args.quiet = true,
                "--verbosity" => {
                    let v = val()?;
                    args.verbosity = Some(
                        manic_obs::Level::parse(&v).ok_or(CliError::UnknownLevel(v))?,
                    );
                }
                other if other.starts_with('-') => {
                    return Err(CliError::UnknownFlag(other.to_string()))
                }
                positional => args.positional.push(positional.to_string()),
            }
        }
        // Window lengths must be positive: downstream day-aligned asserts
        // (LongitudinalConfig) must never be reachable from user input.
        if args.days <= 0 {
            return Err(CliError::InvalidValue {
                flag: "--days",
                reason: format!("must be positive, got {}", args.days),
            });
        }
        if args.hours <= 0 {
            return Err(CliError::InvalidValue {
                flag: "--hours",
                reason: format!("must be positive, got {}", args.hours),
            });
        }
        if args.snapshot_interval == 0 {
            return Err(CliError::InvalidValue {
                flag: "--snapshot-interval",
                reason: "must be at least 1 second".into(),
            });
        }
        if manic_tsdb::FsyncPolicy::parse(&args.durability).is_none() {
            return Err(CliError::InvalidValue {
                flag: "--durability",
                reason: format!("'{}' is not always|every-<n>|never", args.durability),
            });
        }
        if args.threads == 0 {
            return Err(CliError::InvalidValue {
                flag: "--threads",
                reason: "must be at least 1".into(),
            });
        }
        if args.summary_window_days == 0 {
            return Err(CliError::InvalidValue {
                flag: "--summary-window-days",
                reason: "must be at least 1 day".into(),
            });
        }
        if args.checkpoint_every == 0 {
            return Err(CliError::InvalidValue {
                flag: "--checkpoint-every",
                reason: "must be at least 1 round".into(),
            });
        }
        if let Some(spec) = &args.storage_faults {
            if manic_vfs::DiskFaultPlan::parse_spec(spec).is_none() {
                return Err(CliError::InvalidValue {
                    flag: "--storage-faults",
                    reason: format!(
                        "'{spec}' is not <seed>:<eio|enospc|torn|lie|flip[+..]|all>"
                    ),
                });
            }
        }
        if args.request_timeout == 0 {
            return Err(CliError::InvalidValue {
                flag: "--request-timeout",
                reason: "must be at least 1 second".into(),
            });
        }
        // A malformed listen address should fail argument parsing, not
        // surface later as a bind error from inside the server.
        if args.addr.parse::<std::net::SocketAddr>().is_err() {
            return Err(CliError::InvalidValue {
                flag: "--addr",
                reason: format!("'{}' is not a host:port address", args.addr),
            });
        }
        Ok((cmd, args))
    }

    /// Five-minute bins covered by `--summary-window-days`.
    fn summary_window_bins(&self) -> usize {
        self.summary_window_days * 288
    }

    /// Core config with the CLI's threading knob applied. Thread count
    /// never changes results (byte-identical stores), only wall-clock.
    fn system_config(&self) -> SystemConfig {
        SystemConfig {
            threads: self.threads,
            summary_window_bins: self.summary_window_bins(),
            ..SystemConfig::default()
        }
    }

    /// Resolve `--world` through the worldgen library (classic and
    /// generated names alike), keeping provenance for labels and `--stats`.
    fn build_world_full(&self) -> Result<manic_worldgen::BuiltWorld, CliError> {
        manic_worldgen::build_world_full(&self.world, self.seed).map_err(|e| match e {
            manic_worldgen::WorldError::Unknown { name, .. } => CliError::UnknownWorld(name),
            other => CliError::InvalidValue { flag: "--world", reason: other.to_string() },
        })
    }
}

/// Wire the journal's stderr echo to the requested verbosity. The library
/// default echoes Info and above; an interactive CLI wants warnings only
/// unless asked.
fn apply_verbosity(args: &Args) {
    let j = manic_obs::journal();
    if args.quiet {
        j.set_stderr_level(None);
    } else if let Some(level) = args.verbosity {
        j.set_min_level(level);
        j.set_stderr_level(Some(level));
    } else {
        j.set_stderr_level(Some(manic_obs::Level::Warn));
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    let _bin = argv.next();
    match Args::parse(argv) {
        Ok((cmd, args)) => {
            apply_verbosity(&args);
            match run(&cmd, args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}"); // ALLOW_PRINT: CLI user output
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            // ALLOW_PRINT: CLI usage text.
            eprintln!("error: {e}\n");
            eprintln!("usage: manic <world|links|watch|study|export|inspect|obs|run|recover> [flags]");
            eprintln!("  manic world  [--world NAME] [--seed N] [--stats]");
            eprintln!("               (NAME: toy, us, or generated sim-1k|sim-5k|planet-20k|planet-50k)");
            eprintln!("  manic links  --vp <name> [--world ..] [--seed N]");
            eprintln!("  manic watch  --vp <name> [--hours H] [--world ..]");
            eprintln!("  manic study  [--days D] [--world ..] [--seed N]");
            eprintln!("  manic export --vp <name> [--hours H] [--format json|csv]");
            eprintln!("  manic obs    <metrics|journal|explain <far-ip>|links> [--hours H]");
            eprintln!("  manic serve  [--addr HOST:PORT] [--hours H] [--snapshot-interval SECS]");
            eprintln!("               [--max-conns N] [--request-timeout SECS] [--shed-queue-depth N]");
            eprintln!("  manic run    [--hours H] [--data-dir DIR] [--durability P] [--resume]");
            eprintln!("               [--threads N]   (N workers; results identical for any N)");
            eprintln!("  manic recover <data-dir>   (exit 0 clean, 3 recoverable damage, 1 fatal)");
            eprintln!("global flags: --verbosity trace|debug|info|warn|error, --quiet,");
            eprintln!("              --threads N (round-engine workers, default: all cores)");
            eprintln!("durability:   --data-dir DIR, --durability always|every-<n>|never,");
            eprintln!("              --checkpoint-every ROUNDS, --resume,");
            eprintln!("              --storage-faults <seed>:<eio|enospc|torn|lie|flip[+..]|all>");
            eprintln!("              (inject seeded disk faults into the storage layer; testing)");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, args: Args) -> Result<(), CliError> {
    if !matches!(
        cmd,
        "world"
            | "links"
            | "watch"
            | "study"
            | "export"
            | "inspect"
            | "obs"
            | "serve"
            | "run"
            | "recover"
    ) {
        return Err(CliError::UnknownCommand(cmd.to_string()));
    }
    // Only `obs` (subcommands) and `recover` (data dir) take positionals.
    if cmd != "obs" && cmd != "recover" {
        if let Some(extra) = args.positional.first() {
            return Err(CliError::UnexpectedArg(extra.clone()));
        }
    }
    match cmd {
        "world" => cmd_world(args),
        "links" => cmd_links(args),
        "watch" => cmd_watch(args),
        "study" => cmd_study(args),
        "export" => cmd_export(args),
        "inspect" => cmd_inspect(args),
        "serve" => cmd_serve(args),
        "run" => cmd_run(args),
        "recover" => cmd_recover(args),
        _ => cmd_obs(args),
    }
}

/// Build the core durability config from the parsed flags (already
/// validated by [`Args::parse`]).
fn durability_config(args: &Args) -> manic_core::DurabilityConfig {
    let vfs: std::sync::Arc<dyn manic_vfs::Vfs> = match &args.storage_faults {
        None => manic_vfs::real(),
        Some(spec) => {
            let plan =
                manic_vfs::DiskFaultPlan::parse_spec(spec).expect("validated at parse time");
            std::sync::Arc::new(manic_vfs::FaultVfs::new(plan))
        }
    };
    manic_core::DurabilityConfig {
        fsync: manic_tsdb::FsyncPolicy::parse(&args.durability)
            .expect("validated at parse time"),
        checkpoint_every_rounds: args.checkpoint_every,
        vfs,
        ..manic_core::DurabilityConfig::default()
    }
}

fn durability_err(e: std::io::Error) -> CliError {
    CliError::Durability(e.to_string())
}

/// Shared epilogue of `manic run`: arm the level-shift detector over the
/// executed window and print a machine-parseable summary. The same lines
/// come out of a fresh, a durable, and a crashed-then-resumed run, so the
/// crash-torture harness (and CI) can diff them directly.
fn print_run_summary(sys: &mut System, world: &str, seed: u64, from: i64, to: i64) {
    let mut congested: Vec<String> = Vec::new();
    if to > from {
        for vi in 0..sys.vps.len() {
            sys.arm_reactive_loss(vi, from, to);
            congested.extend(sys.vps[vi].loss.targets.iter().map(|t| t.far_ip.to_string()));
        }
    }
    congested.sort();
    congested.dedup();
    println!(
        "run complete: world '{world}' seed {seed} window {} .. {}",
        format_sim(from),
        format_sim(to)
    );
    println!(
        "store: series={} points={} hash={:016x}",
        sys.store.series_count(),
        sys.store.point_count(),
        sys.store.content_hash()
    );
    println!("verdicts: congested={}", if congested.is_empty() { "-".into() } else { congested.join(",") });
}

/// `manic run` — headless measurement run, optionally persisted. With
/// `--data-dir` every sample goes through the WAL and full system state is
/// checkpointed every `--checkpoint-every` rounds; SIGINT/SIGTERM drain
/// flushes the WAL and writes a final checkpoint before exit. `--resume`
/// restores the newest checkpoint from the same directory and re-executes
/// deterministically to the original end of window.
fn cmd_run(args: Args) -> Result<(), CliError> {
    manic_serve::signal::install();
    let stop = || manic_serve::signal::requested();
    let from = t0();
    let to = from + args.hours * 3600;

    let Some(dir) = args.data_dir.clone() else {
        // In-memory run: same summary lines, nothing persisted.
        let mut sys = build_system(&args)?;
        let mut t = from;
        while t < to && !stop() {
            let next = (t + manic_probing::tslp::ROUND_SECS).min(to);
            sys.run_packet_mode(t, next);
            t = next;
        }
        print_run_summary(&mut sys, &args.world, args.seed, from, t);
        return Ok(());
    };

    let dir = std::path::PathBuf::from(dir);
    let cfg = durability_config(&args);
    let has_checkpoint = dir.join("checkpoint.json").is_file();
    let (mut sys, mut d) = if args.resume && has_checkpoint {
        let (mut sys, d, info) = manic_core::resume(&dir, Some(cfg)).map_err(durability_err)?;
        sys.cfg.threads = args.threads;
        // Summaries are rebuilt lazily after resume, so a new window length
        // simply takes effect at the first post-resume commit.
        sys.cfg.summary_window_bins = args.summary_window_bins();
        println!(
            "resumed: world '{}' seed {} rounds={} t={} recovered_in_ms={:.1} \
             tail_discarded={} snapshot_records={} hash_ok={}",
            info.world,
            info.seed,
            info.rounds,
            format_sim(info.t),
            info.recovery_ms,
            info.tail_discarded,
            info.snapshot_records,
            info.store_hash_ok
        );
        (sys, d)
    } else {
        if args.resume {
            // Crash before the first checkpoint landed (or a fresh dir):
            // fall back to a fresh durable run so a supervisor can always
            // restart with `--resume`.
            println!("no checkpoint in {}; starting fresh", dir.display());
        }
        let sys = build_system(&args)?;
        let d = manic_core::Durable::create(&sys, &args.world, args.seed, &dir, from, to, cfg)
            .map_err(durability_err)?;
        (sys, d)
    };

    let end = d.t_end();
    d.run_window(&mut sys, end, &stop).map_err(durability_err)?;
    let reached = d.resume_t();
    d.finalize(&sys, reached).map_err(durability_err)?;
    if reached < end {
        println!(
            "interrupted: checkpointed at round {} (t={}); rerun with --resume to continue",
            d.rounds(),
            format_sim(reached)
        );
    }
    let (world_name, seed, start) = (d.world_name().to_string(), d.seed(), d.t_start());
    print_run_summary(&mut sys, &world_name, seed, start, reached);
    Ok(())
}

/// `manic recover <data-dir>` — read-only report of what a `--resume` from
/// this directory would restore, walking the same generation-fallback /
/// snapshot-healing chain a real resume uses.
///
/// Exit codes: 0 = clean (nothing to work around); 3 = corruption found but
/// a resume would recover (fallback, heal, or quarantined WAL ranges);
/// 1 = unrecoverable (no generation restores).
fn cmd_recover(args: Args) -> Result<(), CliError> {
    if args.positional.len() > 1 {
        return Err(CliError::UnexpectedArg(args.positional[1].clone()));
    }
    let dir = args
        .positional
        .first()
        .cloned()
        .or_else(|| args.data_dir.clone())
        .ok_or_else(|| CliError::MissingValue("recover <data-dir>".into()))?;
    let rep = manic_core::recover_report(std::path::Path::new(&dir)).map_err(durability_err)?;
    println!("recover report for {dir}:");
    println!("  world '{}' seed {}", rep.world, rep.seed);
    println!(
        "  checkpoint: rounds={} t={} (window ends {})",
        rep.rounds,
        format_sim(rep.t),
        format_sim(rep.t_end)
    );
    println!(
        "  store: series={} points={} hash={:016x} ({})",
        rep.series,
        rep.points,
        rep.store_hash,
        if rep.store_hash_ok {
            "hash ok"
        } else if rep.storage.healed_snapshot {
            "hash rebuilt around quarantined WAL ranges"
        } else {
            "HASH MISMATCH"
        }
    );
    println!("  snapshot records: {}", rep.snapshot_records);
    println!(
        "  wal tail: records={} torn={} decode_errors={} (tail is discarded and \
         regenerated deterministically on resume)",
        rep.tail_records, rep.tail_torn, rep.tail_decode_errors
    );
    let s = &rep.storage;
    if s.clean() {
        println!("  storage: clean");
    } else {
        println!(
            "  storage: fallback_generations={} bad_metas={} healed_snapshot={} \
             quarantined_frames={} quarantined_bytes={} gap_windows={}",
            s.fallback_generations,
            s.bad_metas,
            s.healed_snapshot,
            s.quarantined_frames,
            s.quarantined_bytes,
            s.gap_windows
        );
        for note in &s.notes {
            println!("    - {note}");
        }
    }
    if !rep.store_hash_ok && !s.healed_snapshot {
        return Err(CliError::Durability(
            "restored store hash does not match the checkpoint".into(),
        ));
    }
    if !s.clean() {
        // Distinct from failure (1): the directory is damaged but a resume
        // recovers. Scripts can branch on it.
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::process::exit(3);
    }
    Ok(())
}

/// `manic serve` — run the measurement loop and the HTTP query API
/// concurrently. The sim thread owns the `System`, advances packet mode up
/// to `--hours` of simulated time, and publishes a fresh read snapshot
/// every `--snapshot-interval` wall seconds; the server threads only ever
/// see those snapshots, the audit trail, and the (shared, lock-sharded)
/// tsdb. SIGINT/SIGTERM stop accepting, drain in-flight requests, and join
/// every thread before exit.
fn cmd_serve(args: Args) -> Result<(), CliError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Dashboard lookback window for published snapshots.
    const LOOKBACK_SECS: i64 = 6 * 3600;
    /// Sim seconds advanced per scheduling quantum (six TSLP rounds) —
    /// small enough that shutdown and publish cadence stay responsive.
    const CHUNK_SECS: i64 = 1800;

    manic_serve::signal::install();
    let from = t0();
    let to = from + args.hours * 3600;
    // With --data-dir the sim thread runs through the durable layer: every
    // sample hits the WAL and state checkpoints on cadence; the health
    // endpoint exposes the persistence frontier.
    let (mut sys, mut durable, status) = match &args.data_dir {
        None => (build_system(&args)?, None, None),
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            let cfg = durability_config(&args);
            let status = Arc::new(manic_serve::DurabilityStatus::new(&args.durability));
            if args.resume && dir.join("checkpoint.json").is_file() {
                let (mut sys, d, info) =
                    manic_core::resume(&dir, Some(cfg)).map_err(durability_err)?;
                sys.cfg.threads = args.threads;
                sys.cfg.summary_window_bins = args.summary_window_bins();
                status.note_recovery(info.rounds, info.tail_discarded, info.recovery_ms);
                status.note_storage_findings(&info.storage);
                println!(
                    "resumed: world '{}' seed {} rounds={} tail_discarded={} \
                     recovered_in_ms={:.1}",
                    info.world, info.seed, info.rounds, info.tail_discarded, info.recovery_ms
                );
                (sys, Some(d), Some(status))
            } else {
                let sys = build_system(&args)?;
                let d = manic_core::Durable::create(
                    &sys, &args.world, args.seed, &dir, from, to, cfg,
                )
                .map_err(durability_err)?;
                (sys, Some(d), Some(status))
            }
        }
    };
    let hub = Arc::new(manic_serve::SnapshotHub::new());
    let store = Arc::clone(&sys.store);
    let mut serve_cfg = manic_serve::ServeConfig::default();
    serve_cfg.overload.max_conns = args.max_conns;
    serve_cfg.overload.header_read_timeout = Duration::from_secs(args.request_timeout);
    serve_cfg.overload.shed_queue_depth = args.shed_queue_depth;
    let mut state = manic_serve::ServeState::new(Arc::clone(&hub), store, &serve_cfg);
    state.durability = status.clone();
    let state = Arc::new(state);
    let server = manic_serve::Server::start(&args.addr, state, &serve_cfg).map_err(|e| {
        CliError::ServerStart { addr: args.addr.clone(), reason: e.to_string() }
    })?;
    println!(
        "manic-serve listening on http://{} (world '{}', seed {}, {}h of sim time)",
        server.local_addr(),
        args.world,
        args.seed,
        args.hours
    );
    if let Some(d) = &durable {
        println!(
            "durability: data dir {:?}, policy {}, checkpoint every {} rounds",
            args.data_dir.as_deref().unwrap_or("?"),
            d.config().fsync,
            d.config().checkpoint_every_rounds
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let sim_stop = Arc::clone(&stop);
    let sim_hub = Arc::clone(&hub);
    let interval = Duration::from_secs(args.snapshot_interval);
    let sim = std::thread::Builder::new()
        .name("serve-sim".into())
        .spawn(move || {
            // A resumed world continues mid-window; fresh worlds start at
            // the window's beginning either way.
            let (from, end, mut t) = match &durable {
                Some(d) => (d.t_start(), d.t_end(), d.resume_t()),
                None => (from, to, from),
            };
            let mut armed_to = t;
            let mut last_pub: Option<Instant> = None;
            let halted = || sim_stop.load(Ordering::Acquire);
            while !halted() {
                if t < end {
                    let next = (t + CHUNK_SECS).min(end);
                    match &mut durable {
                        Some(d) => {
                            if let Err(e) = d.run_window(&mut sys, next, &halted) {
                                manic_obs::event!(
                                    manic_obs::WARN, "cli", "durability_error", t,
                                    error = e.to_string(),
                                );
                            }
                            t = d.resume_t();
                            if let Some(st) = &status {
                                st.note_progress(d.rounds());
                                let (cr, ct) = d.last_checkpoint();
                                st.note_checkpoint(cr, ct);
                                st.set_storage_degraded(d.wal().degraded());
                            }
                        }
                        None => {
                            sys.run_packet_mode(t, next);
                            t = next;
                        }
                    }
                }
                let due = last_pub.map(|p| p.elapsed() >= interval).unwrap_or(true);
                if due && (t > armed_to || last_pub.is_none()) {
                    if t > armed_to {
                        // Reactive level-shift detection feeds the audit
                        // trail the /api/links verdicts come from.
                        for vi in 0..sys.vps.len() {
                            sys.arm_reactive_loss(vi, armed_to, t);
                        }
                        armed_to = t;
                    }
                    sim_hub.publish_from(&sys, t, LOOKBACK_SECS.min(t - from).max(1));
                    last_pub = Some(Instant::now());
                }
                if t >= end {
                    // Fully simulated: keep serving, stay responsive to
                    // shutdown.
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            // Drain: flush the WAL and leave a final checkpoint so the next
            // `--resume` restarts exactly here.
            if let Some(mut d) = durable {
                let reached = d.resume_t();
                if let Err(e) = d.finalize(&sys, reached) {
                    manic_obs::event!(
                        manic_obs::WARN, "cli", "finalize_error", reached,
                        error = e.to_string(),
                    );
                }
            }
        })
        .expect("spawn sim thread");

    while !manic_serve::signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutting down: draining in-flight requests and flushing state...");
    stop.store(true, Ordering::Release);
    let _ = sim.join();
    server.shutdown();
    println!("done.");
    Ok(())
}

fn cmd_world(args: Args) -> Result<(), CliError> {
    let built = args.build_world_full()?;
    let w = &built.world;
    println!("world '{}' (seed {}):", args.world, args.seed);
    if args.stats {
        let st = &built.stats;
        println!("  ASes (universe):   {}", st.total_ases);
        println!("  AS adjacencies:    {}", st.as_adjacencies);
        println!("  compiled ASes:     {}", st.focus_ases);
        println!("  interdomain links: {}", st.interconnects);
        println!("  vantage points:    {}", st.vps);
        println!("  tiers:");
        for (label, count) in &st.tiers {
            println!("    {label:<8} {count}");
        }
        if st.graph_mem_bytes > 0 {
            println!("  compact graph:     {} KiB", st.graph_mem_bytes / 1024);
        }
        println!("  fingerprint:       {:016x}", built.fingerprint);
        return Ok(());
    }
    println!("  ASes:              {}", w.graph.len());
    println!("  routers:           {}", w.net.topo.routers.len());
    println!("  links:             {}", w.net.topo.links.len());
    println!("  interdomain links: {}", w.gt_links.len());
    println!("  vantage points:    {}", w.vps.len());
    for vp in &w.vps {
        println!("    {} ({} at {})", vp.name, w.graph.info(vp.asn).name, vp.pop);
    }
    Ok(())
}

/// Build the measurement system with its world-provenance label attached.
fn build_system(args: &Args) -> Result<System, CliError> {
    let built = args.build_world_full()?;
    let mut sys = System::new(built.world, args.system_config());
    sys.set_world_label(&built.name, built.fingerprint);
    Ok(sys)
}

fn vp_index(sys: &System, args: &Args) -> Result<usize, CliError> {
    let name = args.vp.as_deref().ok_or(CliError::MissingVp)?;
    sys.vps
        .iter()
        .position(|v| v.handle.name == name)
        .ok_or_else(|| CliError::UnknownVp(name.to_string()))
}

fn cmd_links(args: Args) -> Result<(), CliError> {
    let mut sys = build_system(&args)?;
    let vi = vp_index(&sys, &args)?;
    let n = sys.run_bdrmap_cycle(vi, t0());
    let vp = &sys.vps[vi];
    println!("{}: {} interdomain links under probing", vp.handle.name, n);
    println!("{:<16} {:<16} {:<12} {:<9} {:>5} {:>6}", "near", "far", "neighbor", "rel", "ixp", "dests");
    let bdr = vp
        .bdrmap
        .as_ref()
        .ok_or_else(|| CliError::EmptyCycle(vp.handle.name.clone()))?;
    for task in &vp.tslp.tasks {
        let meta = bdr
            .links
            .iter()
            .find(|l| l.near_ip == task.near_ip && l.far_ip == task.far_ip);
        let (neigh, rel, ixp) = meta
            .map(|l| {
                (
                    sys.world.graph.info(l.far_as).name.clone(),
                    format!("{:?}", l.rel),
                    l.via_ixp,
                )
            })
            .unwrap_or_else(|| ("?".into(), "?".into(), false));
        println!(
            "{:<16} {:<16} {:<12} {:<9} {:>5} {:>6}",
            task.near_ip.to_string(),
            task.far_ip.to_string(),
            neigh,
            rel,
            if ixp { "yes" } else { "" },
            task.dests.len()
        );
    }
    Ok(())
}

fn cmd_watch(args: Args) -> Result<(), CliError> {
    let mut sys = build_system(&args)?;
    let vi = vp_index(&sys, &args)?;
    let from = t0();
    let to = from + args.hours * 3600;
    sys.run_packet_mode(from, to);
    println!(
        "dashboard for {} at {} (lookback {}h):",
        sys.vps[vi].handle.name,
        format_sim(to),
        args.hours
    );
    println!(
        "{:<16} {:<12} {:>10} {:>10} {:>10}  state",
        "link (far)", "neighbor", "near ms", "far ms", "baseline"
    );
    for row in sys.snapshot(vi, to, args.hours * 3600) {
        let neigh = row
            .neighbor
            .map(|a| sys.world.graph.info(a).name.clone())
            .unwrap_or_else(|| "?".into());
        let f = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<16} {:<12} {:>10} {:>10} {:>10}  {}",
            row.far_ip.to_string(),
            neigh,
            f(row.near_latest_ms),
            f(row.far_latest_ms),
            f(row.far_baseline_ms),
            if row.elevated { "ELEVATED" } else { "ok" }
        );
    }
    Ok(())
}

fn cmd_study(args: Args) -> Result<(), CliError> {
    let mut sys = build_system(&args)?;
    let from = t0();
    let to = from + args.days * SECS_PER_DAY;
    let links = run_longitudinal(&mut sys, &LongitudinalConfig::new(from, to));
    println!(
        "longitudinal study {} .. {} ({} links):",
        format_sim(from),
        format_sim(to),
        links.len()
    );
    println!(
        "{:<12} {:<12} {:<16} {:>9} {:>10} {:>9}",
        "host", "neighbor", "far", "observed", "congested", "mean-day%"
    );
    for l in &links {
        let cong = l.congested_days(0.04);
        let mean = if l.day_masks.is_empty() {
            0.0
        } else {
            100.0 * l.day_masks.keys().map(|&d| l.day_pct(d)).sum::<f64>()
                / l.day_masks.len() as f64
        };
        println!(
            "{:<12} {:<12} {:<16} {:>9} {:>10} {:>8.1}%",
            sys.world.graph.info(l.host_as).name,
            sys.world.graph.info(l.neighbor_as).name,
            l.far_ip.to_string(),
            l.observed_days(),
            cong,
            mean
        );
    }
    Ok(())
}

/// §4.2's manual-inspection workflow: render an evidence dossier for every
/// link the pipeline asserts as congested.
fn cmd_inspect(args: Args) -> Result<(), CliError> {
    let mut sys = build_system(&args)?;
    let from = t0();
    let to = from + args.days * SECS_PER_DAY;
    let links = run_longitudinal(&mut sys, &LongitudinalConfig::new(from, to));
    let mut asserted = 0;
    for link in &links {
        if link.congested_days(0.04) == 0 {
            continue;
        }
        asserted += 1;
        // Excerpt: the worst day's series from the first observing VP.
        let (near, far, series_from) = (|| {
            let vi = sys.vps.iter().position(|v| v.handle.name == link.vps[0])?;
            let vp = &sys.vps[vi];
            let task = vp.tslp.tasks.iter().find(|t| t.far_ip == link.far_ip)?;
            let (&day, _) = link.day_masks.iter().max_by_key(|(_, m)| m.count_ones())?;
            let day_t = manic_netsim::time::day_start(day);
            let s = manic_probing::tslp::synthesize_task(
                &sys.world.net,
                &vp.handle,
                task,
                day_t,
                day_t + SECS_PER_DAY,
                900,
            );
            Some((s.near, s.far, day_t))
        })()
        .unwrap_or((vec![], vec![], from));
        let neighbor = sys.world.graph.info(link.neighbor_as).name.clone();
        println!(
            "{}",
            manic_analysis::evidence_report(link, &neighbor, series_from, &near, &far)
        );
    }
    println!("{asserted} asserted links inspected.");
    Ok(())
}

/// Drive a full packet-mode pipeline so the metrics registry, journal, and
/// audit trail have real content, then hand the system back for inspection.
///
/// Every `manic obs` subcommand shares this run: the CLI is one process, so
/// "after a pipeline run" means running one here.
fn obs_pipeline(args: &Args) -> Result<System, CliError> {
    let mut sys = build_system(args)?;
    let from = t0();
    let to = from + args.hours * 3600;
    sys.run_packet_mode(from, to);
    for vi in 0..sys.vps.len() {
        // Level-shift verdicts (reactive loss arming) + live elevation
        // verdicts (dashboard) populate the audit trail.
        sys.arm_reactive_loss(vi, from, to);
        sys.snapshot(vi, to, args.hours * 3600);
    }
    Ok(sys)
}

/// `manic obs <metrics|journal|explain|links>` — the observability window
/// into a pipeline run.
fn cmd_obs(args: Args) -> Result<(), CliError> {
    let sub = args
        .positional
        .first()
        .ok_or(CliError::MissingSubcommand("obs"))?
        .clone();
    match sub.as_str() {
        "metrics" => {
            if args.positional.len() > 1 {
                return Err(CliError::UnexpectedArg(args.positional[1].clone()));
            }
            obs_pipeline(&args)?;
            let r = manic_obs::registry();
            match args.format.as_str() {
                "json" => println!("{}", r.render_json()),
                _ => print!("{}", r.render_prometheus()),
            }
        }
        "journal" => {
            if args.positional.len() > 1 {
                return Err(CliError::UnexpectedArg(args.positional[1].clone()));
            }
            obs_pipeline(&args)?;
            let floor = args.verbosity.unwrap_or(manic_obs::Level::Trace);
            for ev in manic_obs::journal().snapshot() {
                if ev.level < floor {
                    continue;
                }
                if let Some(pat) = &args.filter {
                    if !ev.name.contains(pat.as_str()) && !ev.target.contains(pat.as_str()) {
                        continue;
                    }
                }
                println!("{}", ev.to_json());
            }
            let dropped = manic_obs::journal().dropped();
            if dropped > 0 {
                eprintln!("({dropped} events evicted from the ring)"); // ALLOW_PRINT: CLI user output
            }
        }
        "explain" => {
            let link = args
                .positional
                .get(1)
                .ok_or(CliError::MissingValue("explain <far-ip>".into()))?
                .clone();
            obs_pipeline(&args)?;
            let audit = manic_obs::audit();
            let records = audit.explain(&link);
            if records.is_empty() {
                return Err(CliError::NoAuditRecords { link, known: audit.links() });
            }
            for rec in records {
                print!("{}", rec.render_text());
            }
        }
        "links" => {
            if args.positional.len() > 1 {
                return Err(CliError::UnexpectedArg(args.positional[1].clone()));
            }
            obs_pipeline(&args)?;
            for link in manic_obs::audit().links() {
                println!("{link}");
            }
        }
        other => {
            return Err(CliError::UnknownSubcommand { cmd: "obs", sub: other.to_string() })
        }
    }
    Ok(())
}

fn cmd_export(args: Args) -> Result<(), CliError> {
    let mut sys = build_system(&args)?;
    let vi = vp_index(&sys, &args)?;
    let from = t0();
    let to = from + args.hours * 3600;
    sys.run_packet_mode(from, to);
    let vp_name = sys.vps[vi].handle.name.clone();
    let filter = TagSet::from_pairs([("vp", vp_name.as_str())]);
    match args.format.as_str() {
        "json" => println!("{}", sys.store.export_json("tslp", &filter, from, to)),
        "csv" => {
            println!("series,t,v");
            for key in sys.store.find_series("tslp", &filter) {
                for p in sys.store.query(&key, from, to) {
                    println!("{key},{},{}", p.t, p.v);
                }
            }
        }
        other => return Err(CliError::UnknownFormat(other.to_string())),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn parse(args: &[&str]) -> Result<(String, Args), super::CliError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let (cmd, a) = parse(&["study", "--days", "30", "--world", "us", "--seed", "7"]).unwrap();
        assert_eq!(cmd, "study");
        assert_eq!(a.days, 30);
        assert_eq!(a.world, "us");
        assert_eq!(a.seed, 7);
        let (_, d) = parse(&["world"]).unwrap();
        assert_eq!(d.world, "toy");
        assert_eq!(d.seed, 42);
    }

    #[test]
    fn errors_reported() {
        use super::CliError;
        assert!(matches!(parse(&[]), Err(CliError::MissingCommand)));
        assert!(matches!(parse(&["links", "--seed"]), Err(CliError::MissingValue(_))));
        assert!(matches!(parse(&["links", "--bogus", "1"]), Err(CliError::UnknownFlag(_))));
        assert!(matches!(
            parse(&["links", "--days", "notanumber"]),
            Err(CliError::InvalidValue { flag: "--days", .. })
        ));
        // Non-positive windows are rejected at parse time, before they can
        // reach day-alignment asserts downstream.
        assert!(matches!(
            parse(&["study", "--days", "0"]),
            Err(CliError::InvalidValue { flag: "--days", .. })
        ));
        assert!(matches!(
            parse(&["watch", "--hours", "-3"]),
            Err(CliError::InvalidValue { flag: "--hours", .. })
        ));
    }

    #[test]
    fn serve_flags_validated() {
        use super::CliError;
        let (cmd, a) =
            parse(&["serve", "--addr", "0.0.0.0:9000", "--snapshot-interval", "5"]).unwrap();
        assert_eq!(cmd, "serve");
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.snapshot_interval, 5);
        let (_, d) = parse(&["serve"]).unwrap();
        assert_eq!(d.addr, "127.0.0.1:8379");
        assert_eq!(d.snapshot_interval, 2);
        assert!(matches!(
            parse(&["serve", "--snapshot-interval", "0"]),
            Err(CliError::InvalidValue { flag: "--snapshot-interval", .. })
        ));
        assert!(matches!(
            parse(&["serve", "--addr", "not-an-address"]),
            Err(CliError::InvalidValue { flag: "--addr", .. })
        ));
        assert!(matches!(
            parse(&["serve", "--addr", "localhost"]),
            Err(CliError::InvalidValue { flag: "--addr", .. })
        ));
    }

    #[test]
    fn serve_overload_flags_validated() {
        use super::CliError;
        let (_, a) = parse(&[
            "serve", "--max-conns", "64", "--request-timeout", "3", "--shed-queue-depth", "16",
        ])
        .unwrap();
        assert_eq!(a.max_conns, 64);
        assert_eq!(a.request_timeout, 3);
        assert_eq!(a.shed_queue_depth, 16);
        let (_, d) = parse(&["serve"]).unwrap();
        assert_eq!(d.max_conns, manic_serve::OverloadConfig::default().max_conns);
        assert_eq!(d.request_timeout, 2);
        assert_eq!(d.shed_queue_depth, manic_serve::OverloadConfig::default().shed_queue_depth);
        // 0 means "unlimited" for the budget and "disabled" for depth
        // shedding — both parse; a zero deadline does not.
        assert!(parse(&["serve", "--max-conns", "0"]).is_ok());
        assert!(parse(&["serve", "--shed-queue-depth", "0"]).is_ok());
        assert!(matches!(
            parse(&["serve", "--request-timeout", "0"]),
            Err(CliError::InvalidValue { flag: "--request-timeout", .. })
        ));
        assert!(matches!(
            parse(&["serve", "--max-conns", "-1"]),
            Err(CliError::InvalidValue { flag: "--max-conns", .. })
        ));
    }

    #[test]
    fn durability_flags_validated() {
        use super::CliError;
        let (cmd, a) = parse(&[
            "run", "--data-dir", "/tmp/x", "--durability", "always", "--checkpoint-every", "6",
            "--resume",
        ])
        .unwrap();
        assert_eq!(cmd, "run");
        assert_eq!(a.data_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(a.durability, "always");
        assert_eq!(a.checkpoint_every, 6);
        assert!(a.resume);
        let (_, d) = parse(&["run"]).unwrap();
        assert_eq!(d.durability, "every-64");
        assert_eq!(d.checkpoint_every, 12);
        assert!(!d.resume);
        assert!(matches!(
            parse(&["run", "--durability", "sometimes"]),
            Err(CliError::InvalidValue { flag: "--durability", .. })
        ));
        assert!(matches!(
            parse(&["run", "--checkpoint-every", "0"]),
            Err(CliError::InvalidValue { flag: "--checkpoint-every", .. })
        ));
        let (_, a) = parse(&["run", "--storage-faults", "7:torn+flip"]).unwrap();
        assert_eq!(a.storage_faults.as_deref(), Some("7:torn+flip"));
        assert!(matches!(
            parse(&["run", "--storage-faults", "7:everything"]),
            Err(CliError::InvalidValue { flag: "--storage-faults", .. })
        ));
        assert!(matches!(
            parse(&["run", "--storage-faults", "noseed"]),
            Err(CliError::InvalidValue { flag: "--storage-faults", .. })
        ));
        // `recover` takes its data dir positionally; `run` rejects strays.
        let (cmd, a) = parse(&["recover", "/tmp/x"]).unwrap();
        assert_eq!(cmd, "recover");
        assert_eq!(a.positional, vec!["/tmp/x".to_string()]);
        let (cmd, a) = parse(&["run", "stray"]).unwrap();
        assert!(matches!(super::run(&cmd, a), Err(CliError::UnexpectedArg(_))));
    }

    #[test]
    fn stats_flag_parses() {
        let (_, a) = parse(&["world", "--world", "sim-1k", "--stats"]).unwrap();
        assert!(a.stats);
        let (_, a) = parse(&["world"]).unwrap();
        assert!(!a.stats);
    }

    #[test]
    fn unknown_world_rejected_at_build() {
        let (_, a) = parse(&["world", "--world", "mars"]).unwrap();
        assert!(matches!(a.build_world_full(), Err(super::CliError::UnknownWorld(_))));
    }

    #[test]
    fn positionals_and_verbosity() {
        let (cmd, a) =
            parse(&["obs", "explain", "10.3.0.2", "--hours", "6", "--verbosity", "debug"])
                .unwrap();
        assert_eq!(cmd, "obs");
        assert_eq!(a.positional, vec!["explain".to_string(), "10.3.0.2".to_string()]);
        assert_eq!(a.hours, 6);
        assert_eq!(a.verbosity, Some(manic_obs::Level::Debug));
        assert!(!a.quiet);

        let (_, q) = parse(&["study", "--quiet"]).unwrap();
        assert!(q.quiet);

        use super::CliError;
        assert!(matches!(
            parse(&["obs", "--verbosity", "loud"]),
            Err(CliError::UnknownLevel(_))
        ));
        // Non-obs commands reject stray positionals (checked in run()).
        let (cmd, a) = parse(&["study", "extra"]).unwrap();
        assert!(matches!(
            super::run(&cmd, a),
            Err(CliError::UnexpectedArg(_))
        ));
    }
}
