//! `manic` — command-line interface to the measurement system.
//!
//! ```text
//! manic world [--world toy|us] [--seed N]              # topology summary
//! manic links --vp <name> [--world ..] [--seed N]      # run bdrmap, list links
//! manic watch --vp <name> --days D [--world ..]        # live dashboard after D days
//! manic study --days D [--world ..] [--seed N]         # longitudinal day-link report
//! manic export --vp <name> --hours H [--format json|csv]  # raw TSLP series dump
//! manic inspect [--days D] [--world ..]                # evidence dossiers (sec. 4.2)
//! manic obs metrics [--hours H] [--format prom|json]   # run pipeline, dump metrics
//! manic obs journal [--filter S] [--hours H]           # structured event journal
//! manic obs explain <far-ip> [--hours H]               # audit trail for one link
//! manic obs links [--hours H]                          # links with audit records
//! manic serve [--addr H:P] [--hours H] [--snapshot-interval S]  # HTTP API
//! ```
//!
//! Global flags: `--verbosity trace|debug|info|warn|error` controls both the
//! journal floor and the stderr echo; `--quiet` silences the stderr echo
//! entirely. Without either, the CLI echoes warnings and errors only.
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); every command is deterministic given `--seed`.

use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, format_sim, Date, SECS_PER_DAY};
use manic_scenario::worlds::{toy, us_broadband};
use manic_scenario::World;
use manic_tsdb::TagSet;
use std::fmt;
use std::process::ExitCode;

/// Everything that can go wrong between argv and a finished command. The
/// workspace carries no error-handling dependency, so this small enum is
/// the whole story: every failure path surfaces here instead of panicking.
#[derive(Debug)]
enum CliError {
    MissingCommand,
    UnknownCommand(String),
    MissingValue(String),
    UnknownFlag(String),
    InvalidValue { flag: &'static str, reason: String },
    UnknownWorld(String),
    MissingVp,
    UnknownVp(String),
    UnknownFormat(String),
    EmptyCycle(String),
    MissingSubcommand(&'static str),
    UnknownSubcommand { cmd: &'static str, sub: String },
    UnexpectedArg(String),
    UnknownLevel(String),
    NoAuditRecords { link: String, known: Vec<String> },
    ServerStart { addr: String, reason: String },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing command"),
            CliError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            CliError::InvalidValue { flag, reason } => write!(f, "{flag}: {reason}"),
            CliError::UnknownWorld(w) => write!(f, "unknown world '{w}' (toy|us)"),
            CliError::MissingVp => write!(f, "--vp required"),
            CliError::UnknownVp(vp) => write!(f, "unknown VP '{vp}' (try `manic world`)"),
            CliError::UnknownFormat(fmt) => write!(f, "unknown format '{fmt}' (json|csv)"),
            CliError::EmptyCycle(vp) => {
                write!(f, "bdrmap cycle for '{vp}' produced no links")
            }
            CliError::MissingSubcommand(cmd) => {
                write!(f, "'{cmd}' needs a subcommand (try `manic {cmd} metrics`)")
            }
            CliError::UnknownSubcommand { cmd, sub } => {
                write!(f, "unknown '{cmd}' subcommand '{sub}'")
            }
            CliError::UnexpectedArg(a) => write!(f, "unexpected argument '{a}'"),
            CliError::UnknownLevel(l) => {
                write!(f, "unknown level '{l}' (trace|debug|info|warn|error)")
            }
            CliError::NoAuditRecords { link, known } => {
                write!(f, "no audit records for link '{link}'")?;
                if !known.is_empty() {
                    write!(f, "; links with records: {}", known.join(", "))?;
                }
                Ok(())
            }
            CliError::ServerStart { addr, reason } => {
                write!(f, "cannot serve on {addr}: {reason}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Default simulated start for CLI runs (inside the study window).
fn t0() -> i64 {
    date_to_sim(Date::new(2017, 3, 1))
}

struct Args {
    world: String,
    seed: u64,
    vp: Option<String>,
    days: i64,
    hours: i64,
    format: String,
    /// Positional arguments after the command (subcommand, link IP, ...).
    positional: Vec<String>,
    /// `--verbosity <level>`: journal floor + stderr echo level.
    verbosity: Option<manic_obs::Level>,
    /// `--quiet`: no stderr echo at all.
    quiet: bool,
    /// `--filter <substring>`: journal dump filter (event name or target).
    filter: Option<String>,
    /// `manic serve`: listen address.
    addr: String,
    /// `manic serve`: wall-clock seconds between snapshot publishes.
    snapshot_interval: u64,
}

impl Args {
    fn parse(mut argv: impl Iterator<Item = String>) -> Result<(String, Args), CliError> {
        let cmd = argv.next().ok_or(CliError::MissingCommand)?;
        let mut args = Args {
            world: "toy".into(),
            seed: 42,
            vp: None,
            days: 60,
            hours: 24,
            format: "csv".into(),
            positional: Vec::new(),
            verbosity: None,
            quiet: false,
            filter: None,
            addr: "127.0.0.1:8379".into(),
            snapshot_interval: 2,
        };
        while let Some(flag) = argv.next() {
            let mut val = || argv.next().ok_or_else(|| CliError::MissingValue(flag.clone()));
            fn num<T: std::str::FromStr>(flag: &'static str, v: String) -> Result<T, CliError>
            where
                T::Err: fmt::Display,
            {
                v.parse()
                    .map_err(|e: T::Err| CliError::InvalidValue { flag, reason: e.to_string() })
            }
            match flag.as_str() {
                "--world" => args.world = val()?,
                "--seed" => args.seed = num("--seed", val()?)?,
                "--vp" => args.vp = Some(val()?),
                "--days" => args.days = num("--days", val()?)?,
                "--hours" => args.hours = num("--hours", val()?)?,
                "--format" => args.format = val()?,
                "--filter" => args.filter = Some(val()?),
                "--addr" => args.addr = val()?,
                "--snapshot-interval" => {
                    args.snapshot_interval = num("--snapshot-interval", val()?)?
                }
                "--quiet" => args.quiet = true,
                "--verbosity" => {
                    let v = val()?;
                    args.verbosity = Some(
                        manic_obs::Level::parse(&v).ok_or(CliError::UnknownLevel(v))?,
                    );
                }
                other if other.starts_with('-') => {
                    return Err(CliError::UnknownFlag(other.to_string()))
                }
                positional => args.positional.push(positional.to_string()),
            }
        }
        // Window lengths must be positive: downstream day-aligned asserts
        // (LongitudinalConfig) must never be reachable from user input.
        if args.days <= 0 {
            return Err(CliError::InvalidValue {
                flag: "--days",
                reason: format!("must be positive, got {}", args.days),
            });
        }
        if args.hours <= 0 {
            return Err(CliError::InvalidValue {
                flag: "--hours",
                reason: format!("must be positive, got {}", args.hours),
            });
        }
        if args.snapshot_interval == 0 {
            return Err(CliError::InvalidValue {
                flag: "--snapshot-interval",
                reason: "must be at least 1 second".into(),
            });
        }
        // A malformed listen address should fail argument parsing, not
        // surface later as a bind error from inside the server.
        if args.addr.parse::<std::net::SocketAddr>().is_err() {
            return Err(CliError::InvalidValue {
                flag: "--addr",
                reason: format!("'{}' is not a host:port address", args.addr),
            });
        }
        Ok((cmd, args))
    }

    fn build_world(&self) -> Result<World, CliError> {
        match self.world.as_str() {
            "toy" => Ok(toy(self.seed)),
            "us" => Ok(us_broadband(self.seed)),
            other => Err(CliError::UnknownWorld(other.to_string())),
        }
    }
}

/// Wire the journal's stderr echo to the requested verbosity. The library
/// default echoes Info and above; an interactive CLI wants warnings only
/// unless asked.
fn apply_verbosity(args: &Args) {
    let j = manic_obs::journal();
    if args.quiet {
        j.set_stderr_level(None);
    } else if let Some(level) = args.verbosity {
        j.set_min_level(level);
        j.set_stderr_level(Some(level));
    } else {
        j.set_stderr_level(Some(manic_obs::Level::Warn));
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    let _bin = argv.next();
    match Args::parse(argv) {
        Ok((cmd, args)) => {
            apply_verbosity(&args);
            match run(&cmd, args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}"); // ALLOW_PRINT: CLI user output
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            // ALLOW_PRINT: CLI usage text.
            eprintln!("error: {e}\n");
            eprintln!("usage: manic <world|links|watch|study|export|inspect|obs> [flags]");
            eprintln!("  manic world  [--world toy|us] [--seed N]");
            eprintln!("  manic links  --vp <name> [--world ..] [--seed N]");
            eprintln!("  manic watch  --vp <name> [--hours H] [--world ..]");
            eprintln!("  manic study  [--days D] [--world ..] [--seed N]");
            eprintln!("  manic export --vp <name> [--hours H] [--format json|csv]");
            eprintln!("  manic obs    <metrics|journal|explain <far-ip>|links> [--hours H]");
            eprintln!("  manic serve  [--addr HOST:PORT] [--hours H] [--snapshot-interval SECS]");
            eprintln!("global flags: --verbosity trace|debug|info|warn|error, --quiet");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, args: Args) -> Result<(), CliError> {
    if !matches!(
        cmd,
        "world" | "links" | "watch" | "study" | "export" | "inspect" | "obs" | "serve"
    ) {
        return Err(CliError::UnknownCommand(cmd.to_string()));
    }
    // Only `obs` takes positional arguments.
    if cmd != "obs" {
        if let Some(extra) = args.positional.first() {
            return Err(CliError::UnexpectedArg(extra.clone()));
        }
    }
    match cmd {
        "world" => cmd_world(args),
        "links" => cmd_links(args),
        "watch" => cmd_watch(args),
        "study" => cmd_study(args),
        "export" => cmd_export(args),
        "inspect" => cmd_inspect(args),
        "serve" => cmd_serve(args),
        _ => cmd_obs(args),
    }
}

/// `manic serve` — run the measurement loop and the HTTP query API
/// concurrently. The sim thread owns the `System`, advances packet mode up
/// to `--hours` of simulated time, and publishes a fresh read snapshot
/// every `--snapshot-interval` wall seconds; the server threads only ever
/// see those snapshots, the audit trail, and the (shared, lock-sharded)
/// tsdb. SIGINT/SIGTERM stop accepting, drain in-flight requests, and join
/// every thread before exit.
fn cmd_serve(args: Args) -> Result<(), CliError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Dashboard lookback window for published snapshots.
    const LOOKBACK_SECS: i64 = 6 * 3600;
    /// Sim seconds advanced per scheduling quantum (six TSLP rounds) —
    /// small enough that shutdown and publish cadence stay responsive.
    const CHUNK_SECS: i64 = 1800;

    manic_serve::signal::install();
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let hub = Arc::new(manic_serve::SnapshotHub::new());
    let store = Arc::clone(&sys.store);
    let serve_cfg = manic_serve::ServeConfig::default();
    let state = Arc::new(manic_serve::ServeState::new(Arc::clone(&hub), store, &serve_cfg));
    let server = manic_serve::Server::start(&args.addr, state, &serve_cfg).map_err(|e| {
        CliError::ServerStart { addr: args.addr.clone(), reason: e.to_string() }
    })?;
    println!(
        "manic-serve listening on http://{} (world '{}', seed {}, {}h of sim time)",
        server.local_addr(),
        args.world,
        args.seed,
        args.hours
    );

    let stop = Arc::new(AtomicBool::new(false));
    let sim_stop = Arc::clone(&stop);
    let sim_hub = Arc::clone(&hub);
    let interval = Duration::from_secs(args.snapshot_interval);
    let hours = args.hours;
    let sim = std::thread::Builder::new()
        .name("serve-sim".into())
        .spawn(move || {
            let from = t0();
            let end = from + hours * 3600;
            let mut t = from;
            let mut armed_to = from;
            let mut last_pub: Option<Instant> = None;
            while !sim_stop.load(Ordering::Acquire) {
                if t < end {
                    let next = (t + CHUNK_SECS).min(end);
                    sys.run_packet_mode(t, next);
                    t = next;
                }
                let due = last_pub.map(|p| p.elapsed() >= interval).unwrap_or(true);
                if due && t > armed_to {
                    // Reactive level-shift detection feeds the audit trail
                    // the /api/links verdicts come from.
                    for vi in 0..sys.vps.len() {
                        sys.arm_reactive_loss(vi, armed_to, t);
                    }
                    armed_to = t;
                    sim_hub.publish_from(&sys, t, LOOKBACK_SECS.min(t - from).max(1));
                    last_pub = Some(Instant::now());
                }
                if t >= end {
                    // Fully simulated: keep serving, stay responsive to
                    // shutdown.
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        })
        .expect("spawn sim thread");

    while !manic_serve::signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutting down: draining in-flight requests...");
    stop.store(true, Ordering::Release);
    let _ = sim.join();
    server.shutdown();
    println!("done.");
    Ok(())
}

fn cmd_world(args: Args) -> Result<(), CliError> {
    let w = args.build_world()?;
    println!("world '{}' (seed {}):", args.world, args.seed);
    println!("  ASes:              {}", w.graph.len());
    println!("  routers:           {}", w.net.topo.routers.len());
    println!("  links:             {}", w.net.topo.links.len());
    println!("  interdomain links: {}", w.gt_links.len());
    println!("  vantage points:    {}", w.vps.len());
    for vp in &w.vps {
        println!("    {} ({} at {})", vp.name, w.graph.info(vp.asn).name, vp.pop);
    }
    Ok(())
}

fn vp_index(sys: &System, args: &Args) -> Result<usize, CliError> {
    let name = args.vp.as_deref().ok_or(CliError::MissingVp)?;
    sys.vps
        .iter()
        .position(|v| v.handle.name == name)
        .ok_or_else(|| CliError::UnknownVp(name.to_string()))
}

fn cmd_links(args: Args) -> Result<(), CliError> {
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let vi = vp_index(&sys, &args)?;
    let n = sys.run_bdrmap_cycle(vi, t0());
    let vp = &sys.vps[vi];
    println!("{}: {} interdomain links under probing", vp.handle.name, n);
    println!("{:<16} {:<16} {:<12} {:<9} {:>5} {:>6}", "near", "far", "neighbor", "rel", "ixp", "dests");
    let bdr = vp
        .bdrmap
        .as_ref()
        .ok_or_else(|| CliError::EmptyCycle(vp.handle.name.clone()))?;
    for task in &vp.tslp.tasks {
        let meta = bdr
            .links
            .iter()
            .find(|l| l.near_ip == task.near_ip && l.far_ip == task.far_ip);
        let (neigh, rel, ixp) = meta
            .map(|l| {
                (
                    sys.world.graph.info(l.far_as).name.clone(),
                    format!("{:?}", l.rel),
                    l.via_ixp,
                )
            })
            .unwrap_or_else(|| ("?".into(), "?".into(), false));
        println!(
            "{:<16} {:<16} {:<12} {:<9} {:>5} {:>6}",
            task.near_ip.to_string(),
            task.far_ip.to_string(),
            neigh,
            rel,
            if ixp { "yes" } else { "" },
            task.dests.len()
        );
    }
    Ok(())
}

fn cmd_watch(args: Args) -> Result<(), CliError> {
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let vi = vp_index(&sys, &args)?;
    let from = t0();
    let to = from + args.hours * 3600;
    sys.run_packet_mode(from, to);
    println!(
        "dashboard for {} at {} (lookback {}h):",
        sys.vps[vi].handle.name,
        format_sim(to),
        args.hours
    );
    println!(
        "{:<16} {:<12} {:>10} {:>10} {:>10}  state",
        "link (far)", "neighbor", "near ms", "far ms", "baseline"
    );
    for row in sys.snapshot(vi, to, args.hours * 3600) {
        let neigh = row
            .neighbor
            .map(|a| sys.world.graph.info(a).name.clone())
            .unwrap_or_else(|| "?".into());
        let f = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<16} {:<12} {:>10} {:>10} {:>10}  {}",
            row.far_ip.to_string(),
            neigh,
            f(row.near_latest_ms),
            f(row.far_latest_ms),
            f(row.far_baseline_ms),
            if row.elevated { "ELEVATED" } else { "ok" }
        );
    }
    Ok(())
}

fn cmd_study(args: Args) -> Result<(), CliError> {
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let from = t0();
    let to = from + args.days * SECS_PER_DAY;
    let links = run_longitudinal(&mut sys, &LongitudinalConfig::new(from, to));
    println!(
        "longitudinal study {} .. {} ({} links):",
        format_sim(from),
        format_sim(to),
        links.len()
    );
    println!(
        "{:<12} {:<12} {:<16} {:>9} {:>10} {:>9}",
        "host", "neighbor", "far", "observed", "congested", "mean-day%"
    );
    for l in &links {
        let cong = l.congested_days(0.04);
        let mean = if l.day_masks.is_empty() {
            0.0
        } else {
            100.0 * l.day_masks.keys().map(|&d| l.day_pct(d)).sum::<f64>()
                / l.day_masks.len() as f64
        };
        println!(
            "{:<12} {:<12} {:<16} {:>9} {:>10} {:>8.1}%",
            sys.world.graph.info(l.host_as).name,
            sys.world.graph.info(l.neighbor_as).name,
            l.far_ip.to_string(),
            l.observed_days(),
            cong,
            mean
        );
    }
    Ok(())
}

/// §4.2's manual-inspection workflow: render an evidence dossier for every
/// link the pipeline asserts as congested.
fn cmd_inspect(args: Args) -> Result<(), CliError> {
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let from = t0();
    let to = from + args.days * SECS_PER_DAY;
    let links = run_longitudinal(&mut sys, &LongitudinalConfig::new(from, to));
    let mut asserted = 0;
    for link in &links {
        if link.congested_days(0.04) == 0 {
            continue;
        }
        asserted += 1;
        // Excerpt: the worst day's series from the first observing VP.
        let (near, far, series_from) = (|| {
            let vi = sys.vps.iter().position(|v| v.handle.name == link.vps[0])?;
            let vp = &sys.vps[vi];
            let task = vp.tslp.tasks.iter().find(|t| t.far_ip == link.far_ip)?;
            let (&day, _) = link.day_masks.iter().max_by_key(|(_, m)| m.count_ones())?;
            let day_t = manic_netsim::time::day_start(day);
            let s = manic_probing::tslp::synthesize_task(
                &sys.world.net,
                &vp.handle,
                task,
                day_t,
                day_t + SECS_PER_DAY,
                900,
            );
            Some((s.near, s.far, day_t))
        })()
        .unwrap_or((vec![], vec![], from));
        let neighbor = sys.world.graph.info(link.neighbor_as).name.clone();
        println!(
            "{}",
            manic_analysis::evidence_report(link, &neighbor, series_from, &near, &far)
        );
    }
    println!("{asserted} asserted links inspected.");
    Ok(())
}

/// Drive a full packet-mode pipeline so the metrics registry, journal, and
/// audit trail have real content, then hand the system back for inspection.
///
/// Every `manic obs` subcommand shares this run: the CLI is one process, so
/// "after a pipeline run" means running one here.
fn obs_pipeline(args: &Args) -> Result<System, CliError> {
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let from = t0();
    let to = from + args.hours * 3600;
    sys.run_packet_mode(from, to);
    for vi in 0..sys.vps.len() {
        // Level-shift verdicts (reactive loss arming) + live elevation
        // verdicts (dashboard) populate the audit trail.
        sys.arm_reactive_loss(vi, from, to);
        sys.snapshot(vi, to, args.hours * 3600);
    }
    Ok(sys)
}

/// `manic obs <metrics|journal|explain|links>` — the observability window
/// into a pipeline run.
fn cmd_obs(args: Args) -> Result<(), CliError> {
    let sub = args
        .positional
        .first()
        .ok_or(CliError::MissingSubcommand("obs"))?
        .clone();
    match sub.as_str() {
        "metrics" => {
            if args.positional.len() > 1 {
                return Err(CliError::UnexpectedArg(args.positional[1].clone()));
            }
            obs_pipeline(&args)?;
            let r = manic_obs::registry();
            match args.format.as_str() {
                "json" => println!("{}", r.render_json()),
                _ => print!("{}", r.render_prometheus()),
            }
        }
        "journal" => {
            if args.positional.len() > 1 {
                return Err(CliError::UnexpectedArg(args.positional[1].clone()));
            }
            obs_pipeline(&args)?;
            let floor = args.verbosity.unwrap_or(manic_obs::Level::Trace);
            for ev in manic_obs::journal().snapshot() {
                if ev.level < floor {
                    continue;
                }
                if let Some(pat) = &args.filter {
                    if !ev.name.contains(pat.as_str()) && !ev.target.contains(pat.as_str()) {
                        continue;
                    }
                }
                println!("{}", ev.to_json());
            }
            let dropped = manic_obs::journal().dropped();
            if dropped > 0 {
                eprintln!("({dropped} events evicted from the ring)"); // ALLOW_PRINT: CLI user output
            }
        }
        "explain" => {
            let link = args
                .positional
                .get(1)
                .ok_or(CliError::MissingValue("explain <far-ip>".into()))?
                .clone();
            obs_pipeline(&args)?;
            let audit = manic_obs::audit();
            let records = audit.explain(&link);
            if records.is_empty() {
                return Err(CliError::NoAuditRecords { link, known: audit.links() });
            }
            for rec in records {
                print!("{}", rec.render_text());
            }
        }
        "links" => {
            if args.positional.len() > 1 {
                return Err(CliError::UnexpectedArg(args.positional[1].clone()));
            }
            obs_pipeline(&args)?;
            for link in manic_obs::audit().links() {
                println!("{link}");
            }
        }
        other => {
            return Err(CliError::UnknownSubcommand { cmd: "obs", sub: other.to_string() })
        }
    }
    Ok(())
}

fn cmd_export(args: Args) -> Result<(), CliError> {
    let mut sys = System::new(args.build_world()?, SystemConfig::default());
    let vi = vp_index(&sys, &args)?;
    let from = t0();
    let to = from + args.hours * 3600;
    sys.run_packet_mode(from, to);
    let vp_name = sys.vps[vi].handle.name.clone();
    let filter = TagSet::from_pairs([("vp", vp_name.as_str())]);
    match args.format.as_str() {
        "json" => println!("{}", sys.store.export_json("tslp", &filter, from, to)),
        "csv" => {
            println!("series,t,v");
            for key in sys.store.find_series("tslp", &filter) {
                for p in sys.store.query(&key, from, to) {
                    println!("{key},{},{}", p.t, p.v);
                }
            }
        }
        other => return Err(CliError::UnknownFormat(other.to_string())),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn parse(args: &[&str]) -> Result<(String, Args), super::CliError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let (cmd, a) = parse(&["study", "--days", "30", "--world", "us", "--seed", "7"]).unwrap();
        assert_eq!(cmd, "study");
        assert_eq!(a.days, 30);
        assert_eq!(a.world, "us");
        assert_eq!(a.seed, 7);
        let (_, d) = parse(&["world"]).unwrap();
        assert_eq!(d.world, "toy");
        assert_eq!(d.seed, 42);
    }

    #[test]
    fn errors_reported() {
        use super::CliError;
        assert!(matches!(parse(&[]), Err(CliError::MissingCommand)));
        assert!(matches!(parse(&["links", "--seed"]), Err(CliError::MissingValue(_))));
        assert!(matches!(parse(&["links", "--bogus", "1"]), Err(CliError::UnknownFlag(_))));
        assert!(matches!(
            parse(&["links", "--days", "notanumber"]),
            Err(CliError::InvalidValue { flag: "--days", .. })
        ));
        // Non-positive windows are rejected at parse time, before they can
        // reach day-alignment asserts downstream.
        assert!(matches!(
            parse(&["study", "--days", "0"]),
            Err(CliError::InvalidValue { flag: "--days", .. })
        ));
        assert!(matches!(
            parse(&["watch", "--hours", "-3"]),
            Err(CliError::InvalidValue { flag: "--hours", .. })
        ));
    }

    #[test]
    fn serve_flags_validated() {
        use super::CliError;
        let (cmd, a) =
            parse(&["serve", "--addr", "0.0.0.0:9000", "--snapshot-interval", "5"]).unwrap();
        assert_eq!(cmd, "serve");
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.snapshot_interval, 5);
        let (_, d) = parse(&["serve"]).unwrap();
        assert_eq!(d.addr, "127.0.0.1:8379");
        assert_eq!(d.snapshot_interval, 2);
        assert!(matches!(
            parse(&["serve", "--snapshot-interval", "0"]),
            Err(CliError::InvalidValue { flag: "--snapshot-interval", .. })
        ));
        assert!(matches!(
            parse(&["serve", "--addr", "not-an-address"]),
            Err(CliError::InvalidValue { flag: "--addr", .. })
        ));
        assert!(matches!(
            parse(&["serve", "--addr", "localhost"]),
            Err(CliError::InvalidValue { flag: "--addr", .. })
        ));
    }

    #[test]
    fn unknown_world_rejected_at_build() {
        let (_, a) = parse(&["world", "--world", "mars"]).unwrap();
        assert!(a.build_world().is_err());
    }

    #[test]
    fn positionals_and_verbosity() {
        let (cmd, a) =
            parse(&["obs", "explain", "10.3.0.2", "--hours", "6", "--verbosity", "debug"])
                .unwrap();
        assert_eq!(cmd, "obs");
        assert_eq!(a.positional, vec!["explain".to_string(), "10.3.0.2".to_string()]);
        assert_eq!(a.hours, 6);
        assert_eq!(a.verbosity, Some(manic_obs::Level::Debug));
        assert!(!a.quiet);

        let (_, q) = parse(&["study", "--quiet"]).unwrap();
        assert!(q.quiet);

        use super::CliError;
        assert!(matches!(
            parse(&["obs", "--verbosity", "loud"]),
            Err(CliError::UnknownLevel(_))
        ));
        // Non-obs commands reject stray positionals (checked in run()).
        let (cmd, a) = parse(&["study", "extra"]).unwrap();
        assert!(matches!(
            super::run(&cmd, a),
            Err(CliError::UnexpectedArg(_))
        ));
    }
}
