//! Minimal offline stand-in for `proptest`.
//!
//! The container image has no registry access, so the real crate cannot be
//! fetched. This shim keeps the workspace's property tests running with real
//! randomized inputs: each `proptest!` test draws `ProptestConfig::cases`
//! deterministic pseudo-random cases (seeded from the test name, so runs are
//! reproducible) and fails with the drawn seed on the first violated
//! assertion. There is no shrinking — on failure, rerun locally with the
//! printed case seed to reproduce.
//!
//! Supported surface (exactly what this workspace uses):
//! `proptest!` with optional `#![proptest_config(...)]`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `Strategy` (with `prop_map`),
//! integer/float range strategies, `&str` character-class strategies like
//! `"[a-z]{1,8}"`, `any::<T>()`, tuple strategies up to arity 6, and
//! `prop::collection::vec`.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator for test-case inputs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)` for `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-input purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A failed property assertion, carrying its message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = rng.next_u64();
        // Hit the endpoints occasionally; they are frequent edge cases.
        match u % 64 {
            0 => *self.start(),
            1 => *self.end(),
            _ => self.start() + (u >> 11) as f64 / (1u64 << 53) as f64 * (self.end() - self.start()),
        }
    }
}

/// `&str` strategies: a character-class pattern like `"[a-zA-Z0-9_.-]{1,8}"`.
/// Only `[class]{m,n}` (and bare `[class]`, one char) are understood — the
/// subset the workspace's tests use.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; construct via [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start
                + rng.below((self.len.end - self.len.start).max(1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    pub use super::{Just, Map, Strategy};
}

pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError, TestRng};
}

pub mod prelude {
    pub use super::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Stable 64-bit FNV-1a over the test name, used to seed each test's RNG.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), a, b
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Define property tests. Each listed function runs `cases` times with
/// inputs drawn from its strategies; `prop_assert*!` failures abort the run
/// with the deterministic case seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases as u64 {
                    let case_seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let mut rng = $crate::TestRng::new(case_seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} (seed {case_seed:#x}) failed:\n{e}",
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(-1.0f64..=1.0), &mut rng);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn char_class_strings_match_pattern() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let s = Strategy::generate("[a-z0-9_.-]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The shim's own macro surface: tuples, vec, prop_map, any.
        #[test]
        fn macro_surface_works(
            xs in prop::collection::vec((0i64..100, -1.0f64..1.0), 1..20),
            n in any::<u16>(),
            s in (0u8..4).prop_map(|b| b * 2),
        ) {
            prop_assert!(!xs.is_empty());
            for (t, v) in &xs {
                prop_assert!((0..100).contains(t));
                prop_assert!((-1.0..1.0).contains(v));
            }
            prop_assert!(s % 2 == 0);
            prop_assert_eq!(n, n);
            if xs.len() > 100 {
                return Ok(());
            }
        }
    }
}
