//! Minimal offline stand-in for `criterion`.
//!
//! The container image has no registry access, so the real crate cannot be
//! fetched. This shim keeps `cargo bench` working with a simple
//! warmup-then-measure harness: each benchmark runs until ~`measure_ms` of
//! wall time is spent and reports the mean iteration time. No statistics,
//! plots, or baselines — just numbers on stdout.

use std::time::{Duration, Instant};

/// How a batched benchmark amortizes setup cost. The shim runs one routine
/// call per setup call regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the allotted iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    /// Target measurement time per benchmark, ms.
    measure_ms: u64,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure_ms: 500, sample_size: 0 }
    }
}

fn run_one(name: &str, measure_ms: u64, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: run single iterations until we know the rough cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = if sample_size > 0 {
        sample_size
    } else {
        (Duration::from_millis(measure_ms).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000)
            as u64
    };
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let (value, unit) = if mean >= 1.0 {
        (mean, "s")
    } else if mean >= 1e-3 {
        (mean * 1e3, "ms")
    } else if mean >= 1e-6 {
        (mean * 1e6, "us")
    } else {
        (mean * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter ({iters} iters)");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measure_ms, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: 0 }
    }
}

/// A named group of benchmarks with its own sample-size override.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.parent.measure_ms, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion { measure_ms: 5, sample_size: 0 };
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
    }
}
