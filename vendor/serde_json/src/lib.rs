//! Minimal offline stand-in for `serde_json`, exposing the subset this
//! workspace uses: the [`Value`] tree, the [`json!`] macro (flat literals
//! with expression values), [`to_string`] / [`to_string_pretty`],
//! [`from_str`], indexing, and scalar comparisons.
//!
//! The container image has no registry access, so the real crate cannot be
//! fetched; this shim keeps the public call sites source-compatible. It is
//! not a general-purpose serializer — conversion into [`Value`] goes through
//! the [`ToJson`] trait rather than serde's `Serialize`.

use std::fmt;

/// A JSON number: integers are kept exact, everything else is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

/// A parsed or constructed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered; duplicate keys keep the last write.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into [`Value`] by reference — the role `Serialize` plays for
/// the real crate. The `json!` macro and `to_string*` go through this.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        (*self as f64).to_json()
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Convert anything [`ToJson`] into a [`Value`] (mirrors `serde_json::to_value`).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

/// Build a [`Value`] from a flat literal. Supports `null`, scalars,
/// `[elem, ...]` arrays and `{"key": expr, ...}` objects where every key is
/// a string literal; values are arbitrary expressions convertible via
/// [`ToJson`] (including nested `json!` results).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::Int(i)) => {
            out.push_str(&i.to_string());
        }
        Value::Number(Number::Float(f)) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the token
                // parses back as a float and survives a roundtrip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, e, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Compact JSON serialization of anything convertible via [`ToJson`].
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_json(), None, 0);
    Ok(out)
}

/// Two-space-indented serialization.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_json(), Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                loop {
                    out.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(out));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    out.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(out));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => self.err("unexpected character"),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error(format!("bad number '{text}'")))
    }
}

/// Parse a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = json!({
            "target": "tslp,end=far,vp=a",
            "datapoints": vec![(2.0f64, 0i64), (3.5, 300)],
            "count": 2u32,
            "flag": true,
            "missing": Value::Null,
        });
        let text = to_string(&doc).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back["target"], "tslp,end=far,vp=a");
        assert_eq!(back["datapoints"][0][0], 2.0);
        assert_eq!(back["datapoints"][1][1], 300i64);
        assert_eq!(back["count"], 2i64);
        assert_eq!(back["flag"], true);
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn pretty_output_parses() {
        let doc = json!({"a": vec![1u32, 2, 3], "b": json!({"c": "d"})});
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str(&text).unwrap(), doc);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".into());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact() {
        let big = 9_007_199_254_740_993i64; // 2^53 + 1: not representable in f64
        let s = to_string(&big).unwrap();
        assert_eq!(from_str(&s).unwrap().as_i64(), Some(big));
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(matches!(
            from_str("2.0").unwrap(),
            Value::Number(Number::Float(_))
        ));
    }
}
