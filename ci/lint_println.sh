#!/usr/bin/env bash
# Lint: library code must log through manic-obs, not raw print macros.
#
# Structured events carry sim time, level, and fields, and can be silenced,
# filtered, ring-buffered, and shipped as CI artifacts; a stray eprintln!
# bypasses all of that. This check fails on any `println!` / `eprintln!` in
# workspace Rust sources outside the places terminal output is the point:
#
#   - crates/cli/           (user-facing command output)
#   - crates/bench/src/bin/ (benchmark reports, incl. the serve_load
#                            load-generator report)
#
# Note crates/serve/ is deliberately NOT allowlisted: the HTTP layer logs
# through manic-obs like every other library crate.
#
# A line may opt out with an `ALLOW_PRINT: <reason>` comment — reserved for
# the journal's own stderr sink and similarly self-justifying sites.
set -euo pipefail
cd "$(dirname "$0")/.."

violations=$(grep -rn --include='*.rs' -E '\b(println|eprintln)!' \
    crates/ src/ tests/ 2>/dev/null |
    grep -v '^crates/cli/' |
    grep -v '^crates/bench/src/bin/' |
    grep -v 'ALLOW_PRINT' || true)

if [[ -n "$violations" ]]; then
    echo "error: raw print macros outside cli/bench-bin code — use manic_obs::event! instead" >&2
    echo "$violations" >&2
    exit 1
fi
echo "lint_println: ok"
