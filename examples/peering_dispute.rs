//! A peering-dispute scenario: congestion builds on one interconnection,
//! persists for months, and dissipates after an (implied) settlement —
//! the §1 motivation ("some such links exhibited recurring congestion
//! patterns ... e.g., exceeding half the day for many days").
//!
//! ```text
//! cargo run --release --example peering_dispute
//! ```
//!
//! The example scripts a dispute arc on the ACME↔CDNCO peering — mild in
//! months 1-2, severe (10 h/day) during the dispute, gone after — and shows
//! how the inference pipeline tracks onset, severity, and resolution, plus
//! what an NDT-style throughput test would have seen either side of the
//! settlement.

use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, month_label, month_start, Date};
use manic_probing::VpHandle;
use manic_scenario::schedule::CongestionEpisode;
use manic_scenario::worlds::{install_congestion, toy_asns};
use manic_valid::ndt::{run_ndt, NdtServer};
use manic_valid::tcpmodel::TcpModelConfig;

fn main() {
    // Build the toy topology but replace the default schedule with a
    // dispute arc: Feb'16 mild, Mar-Jun'16 severe, then settled.
    let mut world = manic_scenario::worlds::toy(7);
    let episodes = vec![
        CongestionEpisode::new(toy_asns::ACME, toy_asns::CDNCO, 1..2, 2.0),
        CongestionEpisode::new(toy_asns::ACME, toy_asns::CDNCO, 2..6, 10.0),
    ];
    install_congestion(&mut world, &episodes);

    let mut system = System::new(world, SystemConfig::default());
    let cfg = LongitudinalConfig::new(
        date_to_sim(Date::new(2016, 1, 1)),
        date_to_sim(Date::new(2016, 9, 1)),
    );
    let links = run_longitudinal(&mut system, &cfg);

    let link = links
        .iter()
        .filter(|l| l.neighbor_as == toy_asns::CDNCO)
        .max_by_key(|l| l.congested_days(0.04))
        .expect("disputed link observed");

    println!("Dispute timeline on the acme<->cdnco peering (far IP {}):\n", link.far_ip);
    println!("{:<8} {:>10} {:>16} {:>18}", "month", "cong.days", "mean day-cong %", "interpretation");
    for m in 0u32..8 {
        let lo = manic_netsim::time::day_index(month_start(m));
        let hi = manic_netsim::time::day_index(month_start(m + 1));
        let days: Vec<f64> = link
            .observed
            .range(lo..hi)
            .map(|&d| link.day_pct(d))
            .filter(|&p| p > 0.0)
            .collect();
        let cong = link.observed.range(lo..hi).filter(|&&d| link.day_pct(d) >= 0.04).count();
        let mean = if days.is_empty() {
            0.0
        } else {
            100.0 * days.iter().sum::<f64>() / days.len() as f64
        };
        let verdict = match () {
            _ if cong == 0 => "clean",
            _ if mean > 30.0 => "SEVERE (dispute)",
            _ => "mild congestion",
        };
        println!("{:<8} {:>10} {:>15.1}% {:>18}", month_label(m), cong, mean, verdict);
    }

    // What a throughput test saw at 9pm local, mid-dispute vs post-settlement.
    let vp = system.world.vp("acme-nyc");
    let handle = VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr };
    let server = NdtServer {
        name: "cdnco-host".into(),
        asn: toy_asns::CDNCO,
        addr: system.world.host_addr(toy_asns::CDNCO, 7),
        router: system.world.host_routers[&toy_asns::CDNCO],
    };
    let peak_of = |y, m, d| date_to_sim(Date::new(y, m, d)) + 26 * 3600; // 9pm ET
    let during = run_ndt(&system.world.net, &handle, &server, peak_of(2016, 4, 12), 9, &TcpModelConfig::default())
        .expect("routable");
    let after = run_ndt(&system.world.net, &handle, &server, peak_of(2016, 7, 12), 9, &TcpModelConfig::default())
        .expect("routable");
    println!(
        "\n9pm download throughput: {:.1} Mbit/s during the dispute, {:.1} Mbit/s after settlement.",
        during.download_mbps, after.download_mbps
    );
}
