//! Third-party-auditor scenario (§5.4 / §8): a regulator-style check that a
//! lightweight external measurement system reaches the same conclusions as
//! the operator's confidential utilization data.
//!
//! ```text
//! cargo run --release --example operator_audit
//! ```
//!
//! The inference side never reads utilization; only the audit step compares
//! its day-link classifications against the simulator's ground truth — the
//! role operator data played in the paper.

use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_inference::DayEstimate;
use manic_netsim::time::{date_to_sim, day_index, Date};
use manic_scenario::worlds::toy;
use manic_valid::operator::{audit, AuditOutcome};

fn main() {
    let mut system = System::new(toy(11), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 3, 1));
    let to = date_to_sim(Date::new(2016, 6, 1));
    let links = run_longitudinal(&mut system, &LongitudinalConfig::new(from, to));
    let world = &system.world;

    // Every inferred link enters the audit.
    let mut audited = Vec::new();
    for link in &links {
        let Some(gt) = world.gt_links.iter().find(|g| {
            (g.a_ext == link.far_ip || g.b_ext == link.far_ip)
                && (g.a_int == link.near_ip || g.b_int == link.near_ip)
        }) else {
            continue;
        };
        let estimates: Vec<DayEstimate> = (day_index(from)..day_index(to))
            .map(|d| {
                let iv = link.day_masks.get(&d).map(|m| m.count_ones() as usize).unwrap_or(0);
                DayEstimate {
                    day: (d - day_index(from)) as usize,
                    congested_intervals: iv,
                    congestion_pct: iv as f64 / 96.0,
                }
            })
            .collect();
        let label = format!(
            "acme -> {:<9} ({})",
            world.graph.info(link.neighbor_as).name,
            link.far_ip
        );
        audited.push((label, gt.link, gt.dir_toward(link.host_as), estimates));
    }

    let report = audit(&world.net, &audited, from, to, 5);
    println!("Third-party audit vs operator utilization data, Mar-May 2016:\n");
    for (label, outcome) in &report.outcomes {
        let text = match outcome {
            AuditOutcome::TruePositive => "inferred CONGESTED  — operator data agrees",
            AuditOutcome::TrueNegative => "inferred clean      — operator data agrees",
            AuditOutcome::FalsePositive => "inferred CONGESTED  — operator data DISAGREES",
            AuditOutcome::FalseNegative => "inferred clean      — operator data shows congestion",
        };
        println!("  {label:<42} {text}");
    }
    println!(
        "\n{} audited links; consistent on every link: {}.",
        report.outcomes.len(),
        report.all_consistent()
    );
    println!("(TP={}, TN={}, FP={}, FN={})",
        report.count(AuditOutcome::TruePositive),
        report.count(AuditOutcome::TrueNegative),
        report.count(AuditOutcome::FalsePositive),
        report.count(AuditOutcome::FalseNegative),
    );
}
