//! The §7 "Asymmetric routes" limitation, demonstrated end to end.
//!
//! ```text
//! cargo run --release --example asymmetric_paths
//! ```
//!
//! TSLP's far-end reply returns across the measured link itself ("for a
//! probe that terminates at the far end of an interconnection, the closest
//! path back to the VP is across that same link"), so the probe sees the
//! link's congestion. An end-to-end TCP flow has no such guarantee: with
//! hot-potato routing the download data can come home over an entirely
//! different interconnection. This example reproduces the paper's Link-2
//! situation: a Comcast Chicago VP reaches a server in Tata across the
//! congested Chicago link, while the server's data returns over the clean
//! Ashburn link — TSLP flags congestion, NDT throughput shrugs.

use manic_netsim::time::{date_to_sim, datetime_to_sim, Date};
use manic_probing::{probe_path, VpHandle};
use manic_scenario::worlds::{us_asns, us_broadband};
use manic_valid::ndt::{run_ndt, NdtServer};
use manic_valid::tcpmodel::TcpModelConfig;

fn main() {
    let world = us_broadband(0x5167_C044);
    let vpr = world.vp("comcast-chi");
    let vp = VpHandle { name: vpr.name.clone(), router: vpr.router, addr: vpr.addr };

    // The NDT-style server in Tata's Ashburn footprint.
    let (addr, router) = world.secondary_host_addr(us_asns::TATA, "ash", 7);
    let server = NdtServer { name: "ndt-tata-ash".into(), asn: us_asns::TATA, addr, router };

    let describe = |links: &[(manic_netsim::LinkId, manic_netsim::topo::Direction)]| -> Vec<String> {
        links
            .iter()
            .filter(|&&(l, _)| world.net.topo.link(l).kind == manic_netsim::LinkKind::Interdomain)
            .map(|&(l, _)| {
                let gt = world.gt_links.iter().find(|g| g.link == l).expect("gt");
                format!("{}<->{} at {}", gt.a_asn, gt.b_asn, gt.a_metro)
            })
            .collect()
    };

    // Peak hour in Chicago during the late-2017 Comcast-Tata congestion.
    let peak = datetime_to_sim(Date::new(2017, 12, 7), 3, 0, 0); // 9pm CST
    let quiet = date_to_sim(Date::new(2017, 12, 7)) + 15 * 3600; // 9am CST

    let r = run_ndt(&world.net, &vp, &server, peak, 7, &TcpModelConfig::default()).expect("routable");
    println!("Forward path (VP -> server) crosses: {:?}", describe(&r.forward_links));
    println!("Reverse path (server -> VP) crosses: {:?}", describe(&r.reverse_links));

    // What TSLP sees on the forward (Chicago) link.
    let chi = world
        .links_between(us_asns::COMCAST, us_asns::TATA)
        .into_iter()
        .find(|g| g.a_metro == "chi")
        .expect("chicago link");
    let dst = world.host_addr(us_asns::TATA, 0);
    let walk = world.net.forward_path(vp.router, dst, 7, peak);
    let far_ttl = walk
        .iter()
        .position(|h| h.ingress_addr == chi.far_addr_from(us_asns::COMCAST))
        .map(|i| (i + 1) as u8)
        .expect("far end on path");
    let pp = probe_path(&world.net, &vp, dst, far_ttl, 7, peak).expect("path");
    println!(
        "\nTSLP far-end RTT on the Chicago link: {:.1} ms at peak vs {:.1} ms off-peak",
        pp.min_rtt(&world.net, peak),
        pp.min_rtt(&world.net, quiet)
    );

    let rq = run_ndt(&world.net, &vp, &server, quiet, 7, &TcpModelConfig::default()).expect("routable");
    println!(
        "NDT download throughput:               {:.1} Mbit/s at peak vs {:.1} Mbit/s off-peak",
        r.download_mbps, rq.download_mbps
    );
    println!(
        "\nTSLP correctly flags the Chicago link as congested, yet download\n\
         throughput is unaffected because the data rides the Ashburn link —\n\
         exactly the paper's Link 2 null result (§5.3) and the reason end-to-end\n\
         throughput alone cannot localize interdomain congestion."
    );
}
