//! Quickstart: build a small world, run the measurement system for a few
//! days, and print congestion inferences.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The toy world has one access ISP ("acme") hosting two vantage points, a
//! transit provider, a customer, and two content peers — one of which
//! ("cdnco") is scripted with four hours of evening congestion on its
//! peering. The pipeline below is the paper's (Figure 1): bdrmap discovers
//! the interdomain links, TSLP probes them every five minutes, and the
//! autocorrelation method classifies each day of each link.

use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date, SECS_PER_DAY};
use manic_scenario::worlds::toy;

fn main() {
    // 1. A deterministic world (same seed -> same results).
    let world = toy(42);
    println!(
        "world: {} ASes, {} routers, {} interdomain links, {} VPs",
        world.graph.len(),
        world.net.topo.routers.len(),
        world.gt_links.len(),
        world.vps.len()
    );

    // 2. The measurement system: per-VP bdrmap state, TSLP probers, tsdb.
    let mut system = System::new(world, SystemConfig::default());

    // 3. Probing-state construction: one bdrmap cycle per VP.
    for vi in 0..system.vps.len() {
        let tasks = system.run_bdrmap_cycle(vi, 0);
        println!(
            "{}: bdrmap found {} interdomain links to probe",
            system.vps[vi].handle.name, tasks
        );
    }

    // 4. Sixty days of TSLP measurement + autocorrelation inference (the
    //    fluid fast path synthesizes exactly what packet-mode probing would
    //    have recorded, at a fraction of the cost).
    let from = date_to_sim(Date::new(2016, 4, 1));
    let cfg = LongitudinalConfig::new(from, from + 60 * SECS_PER_DAY);
    let links = run_longitudinal(&mut system, &cfg);

    // 5. Report: per link, how many days showed significant congestion.
    println!("\n{:<10} {:<16} {:>9} {:>10}  verdict", "neighbor", "far IP", "observed", "congested");
    for link in &links {
        let neighbor = system.world.graph.info(link.neighbor_as).name.clone();
        let congested = link.congested_days(0.04);
        println!(
            "{:<10} {:<16} {:>9} {:>10}  {}",
            neighbor,
            link.far_ip.to_string(),
            link.observed_days(),
            congested,
            if congested > 5 { "recurring congestion" } else { "clean" }
        );
    }
}
