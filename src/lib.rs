//! Umbrella crate re-exporting the manic-rs public API.
pub use manic_core as core;
