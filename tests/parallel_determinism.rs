//! Determinism gate for the parallel round engine: the thread count is a
//! pure throughput knob. For any `--threads N`, a measurement window must
//! produce a byte-identical store (content hash, series and point counts),
//! identical congestion verdicts, and an identical durable checkpoint /
//! resume trajectory as the serial engine — with and without a chaos fault
//! schedule running against the world.
//!
//! The parallel leg's thread count defaults to 8 and can be overridden with
//! `MANIC_TEST_THREADS` so CI can sweep the matrix (2, 8, ...).

use manic_core::{resume, Durable, DurabilityConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_netsim::{FaultEvent, FaultKind, FaultSchedule, FaultScope};
use manic_scenario::worlds::toy;
use manic_tsdb::wal::FsyncPolicy;
use std::path::PathBuf;

const SEED: u64 = 42;

fn test_threads() -> usize {
    std::env::var("MANIC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8)
}

fn sys_with_threads(threads: usize) -> System {
    let mut sys = System::new(toy(SEED), SystemConfig::default());
    sys.cfg.threads = threads;
    sys
}

fn install_chaos(sys: &mut System, from: i64, until: i64) {
    let vp_routers: Vec<_> = sys.world.vps.iter().map(|v| v.router).collect();
    let chaos =
        FaultSchedule::chaos(1312, 0.6, &sys.world.net.topo, &vp_routers, from, until);
    assert!(!chaos.is_empty(), "chaos schedule generated no events");
    for &e in chaos.events() {
        sys.world.net.fault.push(e);
    }
}

/// Sorted far-IP verdicts across every VP, as the CLI summary reports them.
fn verdicts(sys: &mut System, from: i64, to: i64) -> Vec<String> {
    let mut out = Vec::new();
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, to);
        out.extend(sys.vps[vi].loss.targets.iter().map(|t| t.far_ip.to_string()));
    }
    out.sort();
    out.dedup();
    out
}

/// Content fingerprints of every VP's incremental link summaries, sorted by
/// `(vp, near, far)`. These cover the ring *content* (dense mins, quality
/// flags, presence, window position) — so equality here is strictly
/// stronger than verdict equality: the whole incremental state must match,
/// not just what the detector concluded from it.
fn summary_fingerprints(sys: &System) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for vp in &sys.vps {
        for ((near, far), s) in &vp.summaries {
            out.push((format!("{}/{near}/{far}", vp.handle.name), s.fingerprint()));
        }
    }
    out.sort();
    out
}

struct Fingerprint {
    hash: u64,
    series: usize,
    points: usize,
    verdicts: Vec<String>,
    summaries: Vec<(String, u64)>,
}

fn fingerprint(sys: &mut System, from: i64, to: i64) -> Fingerprint {
    Fingerprint {
        hash: sys.store.content_hash(),
        series: sys.store.series_count(),
        points: sys.store.point_count(),
        verdicts: verdicts(sys, from, to),
        summaries: summary_fingerprints(sys),
    }
}

fn assert_identical(serial: &Fingerprint, parallel: &Fingerprint, label: &str) {
    assert_eq!(
        serial.hash, parallel.hash,
        "{label}: store content hash diverged (serial {:016x} vs parallel {:016x})",
        serial.hash, parallel.hash
    );
    assert_eq!(serial.series, parallel.series, "{label}: series count diverged");
    assert_eq!(serial.points, parallel.points, "{label}: point count diverged");
    assert_eq!(serial.verdicts, parallel.verdicts, "{label}: verdicts diverged");
    assert!(!serial.summaries.is_empty(), "{label}: no link summaries were built");
    assert_eq!(
        serial.summaries, parallel.summaries,
        "{label}: incremental link-summary state diverged"
    );
}

fn run_pair(chaos: bool, label: &str) {
    let from = date_to_sim(Date::new(2017, 3, 1));
    let to = from + 6 * 3600;
    let threads = test_threads();

    let mut serial = sys_with_threads(1);
    let mut parallel = sys_with_threads(threads);
    if chaos {
        install_chaos(&mut serial, from, to);
        install_chaos(&mut parallel, from, to);
    }

    let r1 = serial.run_packet_mode(from, to);
    let rn = parallel.run_packet_mode(from, to);
    assert_eq!(r1, rn, "{label}: round counts diverged");

    let f1 = fingerprint(&mut serial, from, to);
    let fn_ = fingerprint(&mut parallel, from, to);
    assert!(f1.points > 0, "{label}: serial run produced no samples");
    assert_identical(&f1, &fn_, label);
}

#[test]
fn parallel_matches_serial() {
    run_pair(false, "clean world");
}

#[test]
fn parallel_matches_serial_under_chaos() {
    run_pair(true, "chaos world");
}

/// A VP whose worker panics must not take the round down with it: the
/// engine catches the panic, discards the VP's half-staged round, and the
/// supervisor quarantines it with backoff — identically at every thread
/// count, because the injected panic is a pure function of `(router, t)`.
#[test]
fn panicking_vp_is_quarantined_and_rounds_complete() {
    let from = date_to_sim(Date::new(2017, 3, 1));
    let to = from + 6 * 3600;
    // Panic window over [from+1h, from+2h): first panic strikes the VP into
    // a 30-minute quarantine, the re-probe at +1h30 strikes again (1h
    // backoff), and the next attempt lands past the window — the VP comes
    // back and finishes the run.
    let panic_window = (from + 3600, from + 2 * 3600);

    let mut serial = sys_with_threads(1);
    let mut parallel = sys_with_threads(test_threads());
    for sys in [&mut serial, &mut parallel] {
        let router = sys.world.vps[0].router;
        sys.world.net.fault.push(FaultEvent::window(
            FaultKind::VpPanic,
            FaultScope::Router(router),
            panic_window.0,
            panic_window.1,
        ));
    }

    let r1 = serial.run_packet_mode(from, to);
    let rn = parallel.run_packet_mode(from, to);
    assert_eq!(r1, rn, "panicking VP: round counts diverged");
    assert_eq!(r1, 72, "every round of the window completed despite the panics");

    for (label, sys) in [("serial", &serial), ("parallel", &parallel)] {
        let sup = &sys.vps[0].supervisor;
        assert_eq!(sup.strikes, 2, "{label}: one strike per post-backoff attempt");
        assert!(!sup.retired, "{label}: under max_strikes, quarantined not retired");
        assert!(
            sup.may_run(to),
            "{label}: backoff expired past the window — the VP is back"
        );
        assert_eq!(sys.vps[1].supervisor.strikes, 0, "{label}: other VPs untouched");
    }

    let f1 = fingerprint(&mut serial, from, to);
    let fn_ = fingerprint(&mut parallel, from, to);
    assert!(f1.points > 0, "surviving VPs kept measuring");
    assert_identical(&f1, &fn_, "panicking VP");
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join(format!("manic-par-det-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Kill a parallel durable run between checkpoints, resume it serially, and
/// require the finished window to match an uninterrupted serial in-memory
/// run. Crossing thread counts across the kill is the point: the WAL tail
/// written by 8 workers must replay into the exact state 1 worker rebuilds.
#[test]
fn kill_parallel_resume_serial_matches() {
    let from = date_to_sim(Date::new(2017, 3, 1));
    let to = from + 6 * 3600;
    let mid = from + 4 * 3600 + 20 * 60; // between 12-round checkpoints
    let dcfg = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(64),
        checkpoint_every_rounds: 12,
        ..DurabilityConfig::default()
    };

    // Reference: uninterrupted serial run, entirely in memory.
    let mut ref_sys = sys_with_threads(1);
    ref_sys.run_packet_mode(from, to);
    let ref_fp = fingerprint(&mut ref_sys, from, to);
    drop(ref_sys);

    // Durable run at N threads, killed mid-window with a WAL tail pending.
    let dir = tmpdir("world");
    let mut sys = sys_with_threads(test_threads());
    let mut durable = Durable::create(&sys, "toy", SEED, &dir, from, to, dcfg.clone())
        .expect("create durable");
    durable.run_window(&mut sys, mid, &|| false).expect("run to kill point");
    drop(durable);
    drop(sys);

    // Resume serially and finish the window.
    let (mut sys2, mut durable2, info) = resume(&dir, Some(dcfg)).expect("resume");
    assert!(info.store_hash_ok, "restored snapshot hash verified");
    sys2.cfg.threads = 1;
    durable2.run_window(&mut sys2, to, &|| false).expect("run to window end");
    durable2.finalize(&sys2, to).expect("final checkpoint");

    let res_fp = fingerprint(&mut sys2, from, to);
    assert_identical(&ref_fp, &res_fp, "kill@parallel/resume@serial");

    std::fs::remove_dir_all(&dir).unwrap();
}
