//! Probe-conservation invariant over the whole instrumented pipeline.
//!
//! This test lives alone in its own integration-test binary on purpose: it
//! asserts *exact* equalities over the process-wide metrics registry, so no
//! other test may share the process and probe concurrently.

use manic_core::{System, SystemConfig};
use manic_netsim::time::{datetime_to_sim, Date};
use manic_scenario::worlds::toy;

/// Every probe `Network::send_probe` accepts must be accounted for by
/// exactly one outcome counter — answered (echo reply / time exceeded),
/// unroutable, or a named drop reason. A silent-drop path (an early return
/// that forgets to count) breaks the equality and fails here.
#[test]
fn probes_sent_equals_sum_of_outcomes_and_metrics_cover_subsystems() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    // Evening window: includes the scripted congestion episode, so the
    // level-shift detector has something to find.
    let from = datetime_to_sim(Date::new(2016, 6, 7), 22, 0, 0);
    let to = from + 8 * 3600;
    sys.run_packet_mode(from, to);
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, to);
        sys.snapshot(vi, to, 8 * 3600);
    }

    let r = manic_obs::registry();
    let sent = r.counter_value("manic_netsim_probes_sent");
    let answered = r.counter_value("manic_netsim_probe_echo_reply")
        + r.counter_value("manic_netsim_probe_time_exceeded");
    let unroutable = r.counter_value("manic_netsim_probe_unroutable");
    let dropped = r.sum_counters_with_prefix("manic_netsim_probe_dropped");
    assert!(sent > 0, "pipeline sent no probes");
    assert_eq!(
        sent,
        answered + unroutable + dropped,
        "conservation violated: sent={sent} answered={answered} \
         unroutable={unroutable} dropped={dropped} — some send_probe exit \
         path is not incrementing an outcome counter"
    );

    // The probing layer's own ledger must balance the same way.
    let p_sent = r.sum_counters_with_prefix("manic_probing_probes_sent");
    let p_accounted = r.sum_counters_with_prefix("manic_probing_probes_answered")
        + r.sum_counters_with_prefix("manic_probing_probes_timed_out")
        + r.sum_counters_with_prefix("manic_probing_probes_mismatched")
        + r.sum_counters_with_prefix("manic_probing_probes_lost");
    assert!(p_sent > 0);
    assert_eq!(p_sent, p_accounted, "TSLP sample classification must be total");

    // A pipeline run leaves nonzero counters in at least five subsystems.
    let subsystems = [
        "manic_netsim_",
        "manic_probing_",
        "manic_bdrmap_",
        "manic_inference_",
        "manic_core_",
    ];
    for prefix in subsystems {
        assert!(
            r.sum_counters_with_prefix(prefix) > 0,
            "no nonzero counters under {prefix}"
        );
    }

    // The Prometheus rendering is well-formed: every non-comment line is
    // `name[{labels}] value`, every metric family has exactly one TYPE line.
    let text = r.render_prometheus();
    let mut type_lines = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let fam = parts.next().expect("family name");
            let kind = parts.next().expect("metric kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE kind in {line:?}"
            );
            assert!(type_lines.insert(fam.to_string()), "duplicate TYPE for {fam}");
        } else if !line.is_empty() {
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name_part.is_empty());
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable sample value in {line:?}"
            );
        }
    }
    assert!(type_lines.len() >= 10, "expected a rich registry, got {}", type_lines.len());
}
