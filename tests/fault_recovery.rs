//! Fault-injection recovery tests: the measurement loop must degrade
//! gracefully — quarantine and annotate instead of writing junk, back off
//! and retry instead of dying, and produce *no inference* (never a false
//! one) for windows a fault corrupted.

use manic_core::{run_longitudinal, HealthState, LongitudinalConfig, System, SystemConfig};
use manic_netsim::fault::{FaultEvent, FaultKind, FaultScope};
use manic_netsim::time::{date_to_sim, datetime_to_sim, Date, SECS_PER_DAY};
use manic_probing::tslp::{series_key, End};
use manic_scenario::worlds::{toy, toy_asns};
use manic_tsdb::quality;

/// Quiet-hours window (1am-9am NYC): no scripted congestion, so any level
/// shift the system arms on is a fault artifact.
fn quiet_start() -> i64 {
    datetime_to_sim(Date::new(2016, 6, 7), 6, 0, 0)
}

/// The far interface id + router of the task probing the given neighbor.
fn far_iface(
    sys: &System,
    vi: usize,
    neighbor: manic_netsim::AsNumber,
) -> (manic_netsim::IfaceId, manic_netsim::RouterId, manic_netsim::Ipv4) {
    let gt = &sys.world.links_between(toy_asns::ACME, neighbor)[0];
    let far_ip = gt.far_addr_from(toy_asns::ACME);
    let ifc = sys.world.net.topo.iface_by_addr(far_ip).expect("far iface");
    let _ = vi;
    (ifc.id, ifc.router, far_ip)
}

#[test]
fn interface_silence_quarantines_instead_of_inferring() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    // Disable the reactive probing-set refresh so the health machine (not a
    // re-bdrmap) is what handles the dark task.
    sys.cfg.reactive_mismatch_rounds = 0;
    let from = quiet_start();
    sys.run_bdrmap_cycle(0, from);
    let (ifc, _, far_ip) = far_iface(&sys, 0, toy_asns::VIDCO);
    sys.world.net.fault.push(FaultEvent::window(
        FaultKind::IfaceSilence,
        FaultScope::Iface(ifc),
        from,
        from + 8 * 3600,
    ));
    let to = from + 6 * 3600;
    sys.run_packet_mode(from, to);

    let vp = &sys.vps[0];
    let task = vp.tslp.tasks.iter().find(|t| t.far_ip == far_ip).expect("task");
    let key = series_key(&vp.handle.name, task, End::Far);
    // The dark windows were annotated as quarantine gaps...
    let windows = sys.store.quality_windows(&key);
    assert!(
        windows.iter().any(|(_, _, f)| f & quality::QUARANTINED != 0),
        "quarantine annotations expected, got {windows:?}"
    );
    // ...the task walked the whole ladder down to Retired (silence outlasts
    // max_quarantines backoffs)...
    let h = &vp.health[&(task.near_ip, task.far_ip)];
    assert_eq!(h.state, HealthState::Retired, "{h:?}");
    // Healthy tasks kept probing throughout: their far series are dense.
    let other = vp.tslp.tasks.iter().find(|t| t.far_ip != far_ip).expect("other task");
    let okey = series_key(&vp.handle.name, other, End::Far);
    let pts = sys.store.query(&okey, from, to);
    assert!(pts.len() >= 60, "healthy task stays probed: {} samples", pts.len());
    // ...and no level shift was fabricated from the fault.
    let armed = sys.arm_reactive_loss(0, from, to);
    assert_eq!(armed, 0, "fault must not arm reactive loss probing");
}

#[test]
fn router_reboot_quarantines_then_recovers() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    sys.cfg.reactive_mismatch_rounds = 0;
    let from = quiet_start();
    sys.run_bdrmap_cycle(0, from);
    let (_, router, far_ip) = far_iface(&sys, 0, toy_asns::VIDCO);
    // Down 40 minutes from round 1, then a 5-minute FIB rebuild.
    sys.world.net.fault.push(FaultEvent::window(
        FaultKind::RouterReboot { rebuild_secs: 300 },
        FaultScope::Router(router),
        from + 300,
        from + 2700,
    ));
    let to = from + 3 * 3600;
    sys.run_packet_mode(from, to);

    let vp = &sys.vps[0];
    let task = vp.tslp.tasks.iter().find(|t| t.far_ip == far_ip).expect("task");
    let h = &vp.health[&(task.near_ip, task.far_ip)];
    // Quarantined during the outage, recovered through probation after it.
    assert!(h.quarantines >= 1, "outage long enough to quarantine: {h:?}");
    assert_eq!(h.state, HealthState::Healthy, "recovered after reboot: {h:?}");
    // Probing resumed: samples exist in the final half hour.
    let key = series_key(&vp.handle.name, task, End::Far);
    let tail = sys.store.query(&key, to - 1800, to);
    assert!(!tail.is_empty(), "probing resumed after recovery");
}

#[test]
fn vp_uplink_outage_retries_bdrmap_with_backoff() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    // The nyc VP's own attachment router reboots across the scheduled cycle
    // start: the cycle sees nothing, must retry on a backoff, and succeed
    // once the router is back.
    let from = quiet_start();
    let vp_router = sys.vps[0].handle.router;
    sys.world.net.fault.push(FaultEvent::window(
        FaultKind::RouterReboot { rebuild_secs: 60 },
        FaultScope::Router(vp_router),
        from,
        from + 3600,
    ));
    let rounds = sys.run_packet_mode(from, from + 6 * 3600);
    assert_eq!(rounds, 72);
    let vp = &sys.vps[0];
    assert!(
        !vp.tslp.tasks.is_empty(),
        "bdrmap cycle retried after the outage and rebuilt the probing set"
    );
    assert!(vp.last_cycle.is_some());
    // The healthy chi VP was never disturbed.
    assert!(!sys.vps[1].tslp.tasks.is_empty());
}

#[test]
fn scheduled_vp_retirement_stops_probing_keeps_history() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    let from = quiet_start();
    let retire_at = from + 2 * 3600;
    let vp_router = sys.vps[0].handle.router;
    sys.world.net.fault.push(FaultEvent::window(
        FaultKind::VpRetirement,
        FaultScope::Router(vp_router),
        retire_at,
        i64::MAX,
    ));
    sys.run_packet_mode(from, from + 4 * 3600);
    assert_eq!(sys.active_vps(), 1, "nyc VP retired by the schedule");
    assert!(!sys.vps[0].active && sys.vps[1].active);
    // History before retirement is intact; nothing written after it.
    let vp = &sys.vps[0];
    let task = &vp.tslp.tasks[0];
    let key = series_key(&vp.handle.name, task, End::Far);
    assert!(!sys.store.query(&key, from, retire_at).is_empty());
    assert!(sys.store.query(&key, retire_at, from + 4 * 3600).is_empty());
}

#[test]
fn fluid_inference_on_unaffected_links_matches_fault_free_run() {
    let from = date_to_sim(Date::new(2016, 4, 1));
    let days = 60;
    let cfg = LongitudinalConfig::new(from, from + days * SECS_PER_DAY);

    let mut clean_sys = System::new(toy(9), SystemConfig::default());
    let clean = run_longitudinal(&mut clean_sys, &cfg);

    // Same world, but the congested cdnco far interface goes silent from
    // day 1 on (after probing-state construction, which happens at `from`).
    let mut faulty_sys = System::new(toy(9), SystemConfig::default());
    let gt = &faulty_sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
    let far_ip = gt.far_addr_from(toy_asns::ACME);
    let ifc = faulty_sys.world.net.topo.iface_by_addr(far_ip).expect("iface").id;
    faulty_sys.world.net.fault.push(FaultEvent::window(
        FaultKind::IfaceSilence,
        FaultScope::Iface(ifc),
        from + SECS_PER_DAY,
        i64::MAX,
    ));
    let faulty = run_longitudinal(&mut faulty_sys, &cfg);

    // The clean run detects the congested link.
    let hot_clean: usize = clean
        .iter()
        .filter(|l| l.neighbor_as == toy_asns::CDNCO)
        .map(|l| l.congested_days(0.04))
        .sum();
    assert!(hot_clean >= 45, "baseline detects the hot link: {hot_clean}");

    // The faulted run produces NO inference for the silenced link — not a
    // false one: its day masks are empty (visibility loss, §4.2 rejection).
    for l in faulty.iter().filter(|l| l.far_ip == far_ip) {
        assert!(
            l.day_masks.is_empty(),
            "silenced link must yield no inference, got {} days",
            l.day_masks.len()
        );
    }

    // Links untouched by the fault are bit-for-bit identical to the
    // fault-free run: fault handling is scoped, not global degradation.
    for c in clean.iter().filter(|l| l.far_ip != far_ip) {
        let f = faulty
            .iter()
            .find(|l| l.near_ip == c.near_ip && l.far_ip == c.far_ip)
            .expect("unaffected link present in both runs");
        assert_eq!(c.day_masks, f.day_masks, "masks differ for {:?}", c.far_ip);
        assert_eq!(c.observed, f.observed);
    }
}

#[test]
fn escalating_chaos_never_fabricates_congestion() {
    // Precision floor under chaos: whatever the fault load does to coverage
    // (recall), links that are NOT scripted congested must never be inferred
    // congested. Recall floor: light chaos still finds the hot link.
    let from = date_to_sim(Date::new(2016, 4, 1));
    let days = 60;
    let cfg = LongitudinalConfig::new(from, from + days * SECS_PER_DAY);
    for &intensity in &[0.25, 0.5, 1.0] {
        let mut sys = System::new(toy(5), SystemConfig::default());
        let vp_routers: Vec<_> = sys.world.vps.iter().map(|v| v.router).collect();
        let chaos = manic_netsim::FaultSchedule::chaos(
            77,
            intensity,
            &sys.world.net.topo,
            &vp_routers,
            from + SECS_PER_DAY,
            from + days * SECS_PER_DAY,
        );
        for &e in chaos.events() {
            sys.world.net.fault.push(e);
        }
        let links = run_longitudinal(&mut sys, &cfg);
        for l in &links {
            if l.neighbor_as != toy_asns::CDNCO {
                assert_eq!(
                    l.congested_days(0.04),
                    0,
                    "intensity {intensity}: clean link to AS{} inferred congested",
                    l.neighbor_as.0
                );
            }
        }
        if intensity <= 0.25 {
            let hot: usize = links
                .iter()
                .filter(|l| l.neighbor_as == toy_asns::CDNCO)
                .map(|l| l.congested_days(0.04))
                .sum();
            assert!(hot >= 20, "light chaos keeps recall: {hot} hot days");
        }
    }
}
