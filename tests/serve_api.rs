//! Integration tests for the manic-serve HTTP API: real sockets against a
//! server backed by a toy-world measurement run.
//!
//! One shared fixture builds the world, runs a few simulated hours of
//! packet-mode probing (populating the tsdb and the audit trail), publishes
//! a snapshot, and starts two servers: one with default limits and one with
//! a deliberately tiny rate budget for the 429 path. The audit trail and
//! metric registry are process globals, so everything hangs off a single
//! `OnceLock` fixture rather than per-test worlds.

use manic_core::{System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use manic_serve::{ServeConfig, ServeState, Server, SnapshotHub};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};

struct Fixture {
    addr: SocketAddr,
    strict_addr: SocketAddr,
    hub: Arc<SnapshotHub>,
    store: Arc<manic_tsdb::Store>,
    /// A far-end link IP known to the snapshot (and, in the toy world's
    /// congested case, to the audit trail).
    far: String,
    _server: Server,
    _strict: Server,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let mut sys = System::new(toy(42), SystemConfig::default());
        let from = date_to_sim(Date::new(2017, 3, 1));
        let to = from + 6 * 3600;
        sys.run_packet_mode(from, to);
        for vi in 0..sys.vps.len() {
            sys.arm_reactive_loss(vi, from, to);
        }
        let hub = Arc::new(SnapshotHub::new());
        hub.publish_from(&sys, to, 6 * 3600);

        let store = Arc::clone(&sys.store);
        let cfg = ServeConfig::default();
        let state = Arc::new(ServeState::new(Arc::clone(&hub), Arc::clone(&store), &cfg));
        let server = Server::start("127.0.0.1:0", state, &cfg).expect("bind");

        let strict_cfg = ServeConfig { rate_limit_rps: 2, rate_limit_burst: 2, ..cfg };
        let strict_state =
            Arc::new(ServeState::new(Arc::clone(&hub), Arc::clone(&store), &strict_cfg));
        let strict = Server::start("127.0.0.1:0", strict_state, &strict_cfg).expect("bind strict");

        let far = hub
            .current()
            .links
            .first()
            .map(|l| l.far_ip.to_string())
            .expect("toy world links");
        Fixture {
            addr: server.local_addr(),
            strict_addr: strict.local_addr(),
            hub,
            store,
            far,
            _server: server,
            _strict: strict,
        }
    })
}

/// One request over a fresh connection; returns (status, content-type, body).
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head[9..12].parse().expect("status code");
    let content_type = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-type:").map(str::trim).map(String::from))
        .unwrap_or_default();
    (status, content_type, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, "GET", path)
}

fn get_json(path: &str) -> Value {
    let (status, ct, body) = get(fixture().addr, path);
    assert_eq!(status, 200, "GET {path}: {body}");
    assert_eq!(ct, "application/json");
    serde_json::from_str(&body).expect("valid JSON")
}

#[test]
fn health_reports_every_task() {
    let v = get_json("/api/health");
    assert_eq!(v.get("epoch").and_then(Value::as_i64), Some(fixture().hub.epoch() as i64));
    let tasks = v.get("tasks").and_then(Value::as_array).expect("tasks array");
    assert!(!tasks.is_empty());
    for task in tasks {
        for field in ["vp", "near", "far", "state"] {
            assert!(task.get(field).is_some(), "task missing {field}");
        }
        assert!(task.get("vp_active").and_then(Value::as_bool).is_some());
    }
}

#[test]
fn links_lists_borders_with_verdicts() {
    let v = get_json("/api/links");
    let links = v.get("links").and_then(Value::as_array).expect("links array");
    assert!(!links.is_empty());
    let mut saw_far = false;
    for link in links {
        for field in ["vp", "near", "far", "rel"] {
            assert!(link.get(field).and_then(Value::as_str).is_some(), "missing {field}");
        }
        assert!(link.get("elevated").and_then(Value::as_bool).is_some());
        // congested is a tri-state: true/false once the levelshift detector
        // has spoken for this link, null before that.
        let c = link.get("congested").expect("congested field");
        assert!(c.as_bool().is_some() || matches!(c, Value::Null));
        saw_far |= link.get("far").and_then(Value::as_str) == Some(fixture().far.as_str());
    }
    assert!(saw_far, "snapshot lists the fixture link");
}

#[test]
fn timeseries_serves_real_points_in_both_formats() {
    let far = &fixture().far;
    let v = get_json(&format!("/api/link/{far}/timeseries?bin=300&agg=min"));
    assert_eq!(v.get("link").and_then(Value::as_str), Some(far.as_str()));
    assert_eq!(v.get("bin").and_then(Value::as_i64), Some(300));
    assert_eq!(v.get("agg").and_then(Value::as_str), Some("min"));
    let start = v.get("start").and_then(Value::as_i64).expect("start");
    let end = v.get("end").and_then(Value::as_i64).expect("end");
    let series = v.get("series").and_then(Value::as_array).expect("series");
    assert!(!series.is_empty(), "tslp series exist for {far}");
    let mut points = 0usize;
    for s in series {
        assert!(s.get("key").and_then(Value::as_str).unwrap_or("").contains(far.as_str()));
        for p in s.get("points").and_then(Value::as_array).expect("points") {
            let pair = p.as_array().expect("[t, v] pair");
            let t = pair[0].as_i64().expect("t");
            assert!((start..end).contains(&t), "point at {t} outside [{start},{end})");
            assert!(pair[1].as_f64().expect("v").is_finite());
            points += 1;
        }
    }
    assert!(points > 10, "a 6h window holds many 5-minute rounds, got {points}");

    let (status, ct, body) =
        get(fixture().addr, &format!("/api/link/{far}/timeseries?bin=300&agg=min&format=csv"));
    assert_eq!(status, 200);
    assert_eq!(ct, "text/csv");
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("series,t,v"));
    assert!(lines.clone().count() >= points, "CSV carries the same points");
    // Series keys contain commas, so the series field is quoted; the last
    // two fields are the numeric point.
    assert!(lines.all(|l| {
        let mut tail = l.rsplitn(3, ',');
        let v_ok = tail.next().is_some_and(|v| v.parse::<f64>().is_ok());
        let t_ok = tail.next().is_some_and(|t| t.parse::<i64>().is_ok());
        let name_ok = tail.next().is_some_and(|n| n.starts_with('"') && n.ends_with('"'));
        v_ok && t_ok && name_ok
    }));
}

#[test]
fn bad_requests_get_400s_not_panics() {
    let addr = fixture().addr;
    let far = &fixture().far;
    for path in [
        format!("/api/link/{far}/timeseries?bin=0"),
        format!("/api/link/{far}/timeseries?bin=-5"),
        format!("/api/link/{far}/timeseries?bin=banana"),
        format!("/api/link/{far}/timeseries?agg=median"),
        format!("/api/link/{far}/timeseries?window=0"),
        format!("/api/link/{far}/timeseries?format=xml"),
        format!("/api/link/{far}/timeseries?end=later"),
    ] {
        let (status, _, body) = get(addr, &path);
        assert_eq!(status, 400, "GET {path} -> {body}");
        let v: Value = serde_json::from_str(&body).expect("error envelope is JSON");
        assert!(v.get("error").and_then(|e| e.get("message")).is_some());
    }
}

#[test]
fn unknown_resources_get_404s() {
    let addr = fixture().addr;
    for path in [
        "/api/link/99.99.99.99/timeseries",
        "/api/link/99.99.99.99/explain",
        "/api/nope",
        "/",
    ] {
        let (status, _, body) = get(addr, path);
        assert_eq!(status, 404, "GET {path} -> {body}");
    }
    let (status, _, _) = request(addr, "POST", "/api/links");
    assert_eq!(status, 405);
}

#[test]
fn hostile_rates_hit_429() {
    let addr = fixture().strict_addr;
    let mut ok = 0;
    let mut limited = 0;
    for _ in 0..20 {
        match get(addr, "/api/links").0 {
            200 => ok += 1,
            429 => limited += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok >= 1, "burst admits the first requests");
    assert!(limited >= 10, "sustained abuse is rejected, got {limited} 429s");
    // The priority lane is exempt: health stays reachable from a
    // rate-limited client.
    for _ in 0..5 {
        assert_eq!(get(addr, "/api/health").0, 200, "priority lane never 429s");
    }
}

#[test]
fn explain_agrees_with_audit_trail() {
    let _ = fixture();
    // Pick a link the detector actually ruled on; the fixture link may be
    // one of the clean borders.
    let link = manic_obs::audit()
        .links()
        .into_iter()
        .next()
        .expect("6h of toy-world probing produces audit records");
    let v = get_json(&format!("/api/link/{link}/explain"));
    assert_eq!(v.get("link").and_then(Value::as_str), Some(link.as_str()));
    let served = v.get("records").and_then(Value::as_array).expect("records");
    let trail = manic_obs::audit().explain(&link);
    assert_eq!(served.len(), trail.len(), "served record count == audit trail");
    for (got, want) in served.iter().zip(&trail) {
        assert_eq!(got.get("t").and_then(Value::as_i64), Some(want.t));
        assert_eq!(got.get("vp").and_then(Value::as_str), Some(want.vp.as_str()));
        assert_eq!(got.get("detector").and_then(Value::as_str), Some(want.detector));
        assert_eq!(got.get("congested").and_then(Value::as_bool), Some(want.congested));
        let ev = got.get("evidence").and_then(Value::as_array).expect("evidence");
        assert_eq!(ev.len(), want.evidence.len());
    }
}

#[test]
fn health_surfaces_storage_recovery_state() {
    // A durability-enabled server reports the storage-health block: resumes
    // that fell back a checkpoint generation, healed snapshots, quarantined
    // WAL ranges, and live ENOSPC-degraded mode.
    let fx = fixture();
    let cfg = ServeConfig::default();
    let status = Arc::new(manic_serve::DurabilityStatus::new("every-64"));
    status.note_recovery(24, 2, 3.5);
    let findings = manic_core::StorageFindings {
        fallback_generations: 1,
        healed_snapshot: true,
        quarantined_frames: 3,
        quarantined_bytes: 128,
        gap_windows: 2,
        ..Default::default()
    };
    status.note_storage_findings(&findings);
    status.set_storage_degraded(true);
    status.note_checkpoint(36, 10_800);
    let mut state = ServeState::new(Arc::clone(&fx.hub), Arc::clone(&fx.store), &cfg);
    state.durability = Some(status);
    let server = Server::start("127.0.0.1:0", Arc::new(state), &cfg).expect("bind durable");

    let (code, ct, body) = get(server.local_addr(), "/api/health");
    assert_eq!(code, 200, "{body}");
    assert_eq!(ct, "application/json");
    let v: Value = serde_json::from_str(&body).expect("valid JSON");
    let d = v.get("durability").expect("durability block");
    assert_eq!(d.get("resumed").and_then(Value::as_bool), Some(true));
    let s = d.get("storage").expect("storage block");
    assert_eq!(s.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(s.get("fallback_generations").and_then(Value::as_i64), Some(1));
    assert_eq!(s.get("healed_snapshot").and_then(Value::as_bool), Some(true));
    assert_eq!(s.get("quarantined_frames").and_then(Value::as_i64), Some(3));
    assert_eq!(s.get("quarantined_bytes").and_then(Value::as_i64), Some(128));
    assert_eq!(s.get("gap_windows").and_then(Value::as_i64), Some(2));
    assert_eq!(s.get("checkpoint_generation").and_then(Value::as_i64), Some(36));

    server.shutdown();
}

#[test]
fn metrics_endpoint_speaks_prometheus() {
    let (status, ct, body) = get(fixture().addr, "/metrics");
    assert_eq!(status, 200);
    assert!(ct.starts_with("text/plain"));
    for needle in [
        "# TYPE manic_serve_requests counter",
        "manic_serve_requests{endpoint=\"links\"}",
        "manic_serve_open_connections",
        "manic_core_round_duration_ms",
    ] {
        assert!(body.contains(needle), "/metrics missing {needle}");
    }
}

#[test]
fn snapshot_epoch_is_stable_across_reads() {
    let before = fixture().hub.epoch();
    for _ in 0..3 {
        get_json("/api/links");
    }
    assert_eq!(fixture().hub.epoch(), before, "reads never republish snapshots");
}

// ---------------------------------------------------------------------------
// Overload behavior
// ---------------------------------------------------------------------------

/// Like [`request`] but returns the raw response head too, for header
/// assertions (Retry-After).
fn get_with_head(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head[9..12].parse().expect("status code");
    (status, head.to_string(), body.to_string())
}

/// Read one metric value out of a Prometheus exposition body.
fn metric_value(metrics_body: &str, series: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(series) && l[series.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
        .unwrap_or(0.0)
}

fn scrape_metrics() -> String {
    let (status, _, body) = get(fixture().addr, "/metrics");
    assert_eq!(status, 200);
    body
}

#[test]
fn slowloris_is_disconnected_at_the_header_deadline() {
    use std::time::{Duration, Instant};
    let fx = fixture();
    // Dedicated server: short header deadline, deliberately long keep-alive
    // so a disconnect can only come from the per-request deadline.
    let mut cfg = ServeConfig { keep_alive_timeout: Duration::from_secs(30), ..Default::default() };
    cfg.overload.header_read_timeout = Duration::from_millis(300);
    let state = Arc::new(ServeState::new(Arc::clone(&fx.hub), Arc::clone(&fx.store), &cfg));
    let server = Server::start("127.0.0.1:0", state, &cfg).expect("bind");
    let before = metric_value(
        &scrape_metrics(),
        "manic_serve_disconnects{kind=\"header_timeout\"}",
    );

    let started = Instant::now();
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    // Dribble a partial request head, one fragment at a time, never
    // finishing it.
    for fragment in ["GET /api", "/links HT", "TP/1.1\r\nHos"] {
        let _ = s.write_all(fragment.as_bytes());
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink); // EOF once the server hangs up
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "disconnected by the header deadline, not keep-alive ({elapsed:?})"
    );
    assert!(sink.is_empty(), "no response for a never-finished request");
    let after = metric_value(
        &scrape_metrics(),
        "manic_serve_disconnects{kind=\"header_timeout\"}",
    );
    assert!(after > before, "header-timeout disconnect counted ({before} -> {after})");
    server.shutdown();
}

#[test]
fn shed_gate_returns_503_and_keeps_the_priority_lane_open() {
    let fx = fixture();
    // A latency threshold no real request can beat: the first admitted
    // request primes the EWMA and closes the gate behind itself.
    let mut cfg = ServeConfig::default();
    cfg.overload.shed_latency_ms = 1e-9;
    cfg.overload.retry_after_secs = 7;
    let state = Arc::new(ServeState::new(Arc::clone(&fx.hub), Arc::clone(&fx.store), &cfg));
    let server = Server::start("127.0.0.1:0", state, &cfg).expect("bind");
    let addr = server.local_addr();

    // First request is admitted (EWMA is empty) and poisons the average.
    assert_eq!(get(addr, "/api/links").0, 200, "first request primes the EWMA");
    let mut shed = 0;
    for _ in 0..5 {
        let (status, head, body) = get_with_head(addr, "/api/links");
        if status == 503 {
            shed += 1;
            assert!(
                head.contains("Retry-After: 7"),
                "shed response advertises Retry-After: {head}"
            );
            let v: Value = serde_json::from_str(&body).expect("shed error envelope is JSON");
            assert!(v.get("error").is_some());
        }
    }
    assert!(shed >= 4, "gate closed after the priming request, got {shed} 503s");

    // The priority lane stays open while the gate is shut...
    let (status, _, body) = get(addr, "/api/health");
    assert_eq!(status, 200, "health answers while shedding: {body}");
    let v: Value = serde_json::from_str(&body).expect("health is JSON");
    let overload = v.get("overload").expect("health carries the overload block");
    assert_eq!(
        overload.get("shed_active").and_then(Value::as_bool),
        Some(true),
        "overload block reports the closed gate: {overload:?}"
    );
    assert!(overload.get("shed_total").and_then(Value::as_i64).unwrap_or(0) >= shed);
    assert_eq!(get(addr, "/metrics").0, 200, "metrics answers while shedding");

    // ...and the rejections are counted.
    let m = scrape_metrics();
    assert!(
        metric_value(&m, "manic_serve_shed{reason=\"latency\"}") >= shed as f64,
        "shed rejections appear in /metrics"
    );
    server.shutdown();
}

#[test]
fn every_parser_rejection_is_counted_in_metrics() {
    let fx = fixture();
    let addr = fx.addr;
    let before = scrape_metrics();

    let raw_request = |raw: &[u8]| -> u16 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw).expect("send");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).expect("read");
        let resp = String::from_utf8_lossy(&resp).into_owned();
        resp.get(9..12).and_then(|s| s.parse().ok()).unwrap_or(0)
    };

    // One of each parser rejection.
    let huge_uri = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8192));
    assert_eq!(raw_request(huge_uri.as_bytes()), 414);
    let huge_headers =
        format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(32 * 1024));
    assert_eq!(raw_request(huge_headers.as_bytes()), 431);
    let mut many_headers = String::from("GET / HTTP/1.1\r\n");
    for i in 0..80 {
        many_headers.push_str(&format!("X-{i}: v\r\n"));
    }
    many_headers.push_str("\r\n");
    assert_eq!(raw_request(many_headers.as_bytes()), 431);
    assert_eq!(
        raw_request(b"POST /api/links HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"),
        413
    );
    assert_eq!(raw_request(b"complete garbage\r\n\r\n"), 400);

    let after = scrape_metrics();
    for series in [
        "manic_serve_parse_rejected{reason=\"uri_too_long\"}",
        "manic_serve_parse_rejected{reason=\"headers_too_large\"}",
        "manic_serve_parse_rejected{reason=\"too_many_headers\"}",
        "manic_serve_parse_rejected{reason=\"body\"}",
        "manic_serve_parse_rejected{reason=\"malformed\"}",
    ] {
        assert!(
            metric_value(&after, series) > metric_value(&before, series),
            "{series} not incremented"
        );
    }
    // The health overload block aggregates the same counters.
    let v = get_json("/api/health");
    let overload = v.get("overload").expect("overload block");
    assert!(overload.get("parse_rejected_total").and_then(Value::as_i64).unwrap_or(0) >= 5);
}
