//! Probing-state maintenance under routing change (§3.2).
//!
//! "Over time, the interdomain links visible from a VP ... may change. To
//! keep the probing set up-to-date, we use the bdrmap traceroutes to
//! continuously update the mapping between destinations and visible
//! interdomain links." This test flips the route toward the congested peer
//! from the direct peering to transit mid-run and checks that (a) the stale
//! probing state detects the visibility loss (responses from unexpected
//! interfaces), and (b) the next bdrmap cycle repairs the probing set.

use manic_core::{System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date, SECS_PER_DAY};
use manic_netsim::{Fib, RouterId};
use manic_scenario::worlds::{toy, toy_asns};

#[test]
fn route_flap_detected_and_probing_state_repaired() {
    let mut sys = System::new(toy(3), SystemConfig::default());
    let t0 = date_to_sim(Date::new(2016, 5, 2));
    sys.run_bdrmap_cycle(0, t0);

    let gt_far = {
        let links = sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO);
        links[0].far_addr_from(toy_asns::ACME)
    };
    assert!(
        sys.vps[0].tslp.tasks.iter().any(|t| t.far_ip == gt_far),
        "peering link probed initially"
    );

    // Healthy round: every sample answered by the expected interface.
    let samples = {
        let world = &sys.world;
        let vp = &mut sys.vps[0];
        vp.tslp.probe_round(&world.net, &mut vp.sim, t0 + 600, &sys.store)
    };
    assert!(samples.iter().all(|(_, s)| !s.mismatched));
    assert!(samples.iter().filter(|(_, s)| s.rtt_ms.is_some()).count() * 10 >= samples.len() * 9);

    // Route flap at t1: ACME withdraws the CDNCO peering routes — traffic to
    // CDNCO shifts to transit. Build the new epoch by cloning current FIBs
    // and repointing CDNCO's block at every ACME backbone router.
    let t1 = t0 + SECS_PER_DAY;
    let cdnco_block = sys.world.addressing.of(toy_asns::CDNCO).block;
    let transitco_block = sys.world.addressing.of(toy_asns::TRANSITCO).block;
    let n_routers = sys.world.net.topo.routers.len();
    let mut fibs: Vec<Fib> = (0..n_routers)
        .map(|r| sys.world.net.fib(RouterId(r as u32), t0).clone())
        .collect();
    for (r, fib) in fibs.iter_mut().enumerate() {
        let router = sys.world.net.topo.router(RouterId(r as u32));
        if router.asn != toy_asns::ACME {
            continue;
        }
        // Reroute CDNCO the way this router already reaches TRANSITCO.
        if let Some(via) = fib.lookup(transitco_block.addr()).map(|g| g.to_vec()) {
            fib.insert(cdnco_block, via);
        }
    }
    sys.world.net.add_epoch(t1, fibs);

    // Stale probing state now sees mismatched responders on the old link.
    let samples = {
        let world = &sys.world;
        let vp = &mut sys.vps[0];
        vp.tslp.probe_round(&world.net, &mut vp.sim, t1 + 600, &sys.store)
    };
    let vp0 = &sys.vps[0];
    let stale_task = vp0
        .tslp
        .tasks
        .iter()
        .position(|t| t.far_ip == gt_far)
        .expect("stale task still present");
    let stale_samples: Vec<_> = samples.iter().filter(|(ti, _)| *ti == stale_task).collect();
    assert!(!stale_samples.is_empty());
    assert!(
        stale_samples
            .iter()
            .any(|(_, s)| s.mismatched || s.rtt_ms.is_none()),
        "visibility loss must be observable: {stale_samples:?}"
    );

    // The next bdrmap cycle rebuilds the probing set without the dead link.
    sys.run_bdrmap_cycle(0, t1 + 2 * SECS_PER_DAY);
    let vp0 = &sys.vps[0];
    assert!(
        !vp0.tslp.tasks.iter().any(|t| t.far_ip == gt_far),
        "withdrawn peering no longer probed"
    );
    // And probing continues cleanly on the new state.
    let samples = {
        let world = &sys.world;
        let vp = &mut sys.vps[0];
        vp.tslp.probe_round(&world.net, &mut vp.sim, t1 + 2 * SECS_PER_DAY + 600, &sys.store)
    };
    let ok = samples.iter().filter(|(_, s)| s.rtt_ms.is_some()).count();
    assert!(ok * 10 >= samples.len() * 9, "{ok}/{} responses", samples.len());
}

#[test]
fn reactive_update_repairs_within_minutes() {
    // §3.2's future-work item, implemented: with reactive updates on, a
    // visibility loss triggers an immediate bdrmap cycle instead of waiting
    // for the multi-day cadence.
    let mut sys = System::new(toy(3), SystemConfig::default());
    assert_eq!(sys.cfg.reactive_mismatch_rounds, 3);
    let t0 = date_to_sim(Date::new(2016, 5, 2));
    // Packet mode seeds the probing state at t0.
    sys.run_packet_mode(t0, t0 + 1800);

    let gt_far = {
        let links = sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO);
        links[0].far_addr_from(toy_asns::ACME)
    };
    assert!(sys.vps[0].tslp.tasks.iter().any(|t| t.far_ip == gt_far));

    // Withdraw the peering (same construction as above).
    let t1 = t0 + 3600;
    let cdnco_block = sys.world.addressing.of(toy_asns::CDNCO).block;
    let transitco_block = sys.world.addressing.of(toy_asns::TRANSITCO).block;
    let n_routers = sys.world.net.topo.routers.len();
    let mut fibs: Vec<Fib> = (0..n_routers)
        .map(|r| sys.world.net.fib(RouterId(r as u32), t0).clone())
        .collect();
    for (r, fib) in fibs.iter_mut().enumerate() {
        if sys.world.net.topo.router(RouterId(r as u32)).asn != toy_asns::ACME {
            continue;
        }
        if let Some(via) = fib.lookup(transitco_block.addr()).map(|g| g.to_vec()) {
            fib.insert(cdnco_block, via);
        }
    }
    sys.world.net.add_epoch(t1, fibs);

    // One hour of packet mode after the flap: 12 rounds, far easier than
    // the 2-day scheduled cadence. The third dark round must have triggered
    // a reactive cycle that drops the dead link.
    sys.run_packet_mode(t1, t1 + 3600);
    assert!(
        !sys.vps[0].tslp.tasks.iter().any(|t| t.far_ip == gt_far),
        "reactive update must repair the probing set within the hour"
    );
    assert!(
        sys.vps[0].last_cycle.unwrap() >= t1,
        "a fresh cycle ran after the flap"
    );
}
