//! End-to-end invariants for generated library worlds.
//!
//! Three claims the world generator must keep:
//!
//! 1. **Determinism is total.** The same `(name, seed)` pair yields the same
//!    fingerprint on every build, and the measurement engine lands a
//!    byte-identical store regardless of `--threads`.
//! 2. **Generated topologies are routable and valley-free.** Gao-Rexford
//!    lazy routing finds a path between sampled node pairs, and every such
//!    path respects the customer/peer/provider export rules.
//! 3. **Planted ground truth is reachable.** Every VP's host AS routes to
//!    both sides of every interconnect the scenario library plants, so a
//!    scenario can never plant congestion the measurement layer is
//!    structurally unable to see.

use manic_core::{System, SystemConfig};
use manic_netsim::time::month_start;
use manic_netsim::AsNumber;
use manic_worldgen::{
    build_world_full, compile_world, generate, scenario_library, valley_free, LazyRoutes,
    NodeId, Topology, WorldSpec, STUDY_MONTHS,
};
use proptest::prelude::*;
use std::collections::HashMap;

const SEED: u64 = 0xD1A5_0C44;

fn packet_hash(name: &str, threads: usize) -> (u64, u64) {
    let built = build_world_full(name, SEED).expect("library world builds");
    let fp = built.fingerprint;
    let mut sys = System::new(built.world, SystemConfig { threads, ..SystemConfig::default() });
    let from = month_start(STUDY_MONTHS.start);
    let rounds = sys.run_packet_mode(from, from + 6 * 3600);
    assert!(rounds > 0, "packet mode must run rounds");
    (fp, sys.store.content_hash())
}

#[test]
fn same_seed_identical_fingerprint_and_store_across_threads() {
    let (fp_serial, hash_serial) = packet_hash("sim-1k", 1);
    for threads in [2, 8] {
        let (fp, hash) = packet_hash("sim-1k", threads);
        assert_eq!(fp, fp_serial, "fingerprint must not depend on threads={threads}");
        assert_eq!(hash, hash_serial, "store must be byte-identical at threads={threads}");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = build_world_full("sim-1k", 1).unwrap();
    let b = build_world_full("sim-1k", 2).unwrap();
    assert_ne!(a.fingerprint, b.fingerprint);
}

/// Node ids of a topology keyed by ASN.
fn node_index(topo: &Topology) -> HashMap<AsNumber, NodeId> {
    (0..topo.graph.len() as NodeId).map(|n| (topo.graph.asn(n), n)).collect()
}

#[test]
fn every_vp_routes_to_every_planted_interconnect() {
    for key in ["steady", "flash", "maint", "shift"] {
        let mut built = compile_world("sim-1k", SEED).expect("sim-1k compiles");
        let scenario = scenario_library()
            .into_iter()
            .find(|s| s.key == key)
            .expect("library scenario");
        let planted = scenario.install(&mut built.world, SEED, STUDY_MONTHS);
        assert!(!planted.gt.is_empty(), "{key}: scenario must plant ground truth");

        let topo = built.topo.as_ref().expect("generated world keeps its topology");
        let nodes = node_index(topo);
        let mut routes = LazyRoutes::new(&topo.graph);
        for &(vp_node, _) in &topo.vp_placements {
            for &(a, b) in &planted.gt {
                for asn in [a, b] {
                    let dst = *nodes.get(&asn).unwrap_or_else(|| {
                        panic!("{key}: planted ASN {asn} missing from compact graph")
                    });
                    let path = routes.path(vp_node, dst).unwrap_or_else(|| {
                        panic!(
                            "{key}: VP AS {} has no route to planted AS {asn}",
                            topo.graph.asn(vp_node)
                        )
                    });
                    assert!(
                        valley_free(&topo.graph, &path),
                        "{key}: route from VP AS {} to {asn} has a valley",
                        topo.graph.asn(vp_node)
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampled routes on generated planets of arbitrary seed and size are
    /// valley-free, and the tier-1 core reaches the whole stub tail.
    #[test]
    fn generated_routes_are_valley_free(
        seed in any::<u64>(),
        total in 300usize..900,
        vps in 4usize..12,
    ) {
        let spec = WorldSpec::planetary("prop", total, vps);
        let topo = generate(&spec, seed);
        let g = &topo.graph;
        let mut routes = LazyRoutes::new(g);

        // Sample destinations spread across the id space (hits every tier
        // band: clique, transit, content, access, stubs).
        let n = g.len() as NodeId;
        let dsts: Vec<NodeId> = (0..8).map(|i| i * (n - 1) / 7).collect();
        for &(vp_node, _) in topo.vp_placements.iter().take(4) {
            for &dst in &dsts {
                let path = routes
                    .path(vp_node, dst)
                    .expect("generated planets are fully routable from VPs");
                prop_assert!(valley_free(g, &path), "valley in VP path");
            }
        }
        // The first tier-1 must reach the last stub (whole-graph
        // connectivity through the provider tree).
        let path = routes.path(0, n - 1).expect("tier-1 reaches the stub tail");
        prop_assert!(valley_free(g, &path));
    }
}
