//! Storage-fault robustness through the public API: checkpoint/WAL bit
//! flips (recover-or-flag, never a panic and never silent divergence),
//! ENOSPC mid-group-commit (graceful raw-sample shedding), and checkpoint
//! generation fallback.
//!
//! The template fixture is one finished durable run over a 4 h toy-world
//! window with several checkpoint generations on disk; each test copies it
//! and damages its own copy.

use manic_core::{recover_report_with, resume, Durable, DurabilityConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use manic_tsdb::wal::FsyncPolicy;
use manic_vfs::{DiskFaultEvent, DiskFaultKind, DiskFaultPlan, FaultVfs};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SEED: u64 = 42;

fn window() -> (i64, i64) {
    let from = date_to_sim(Date::new(2017, 3, 1));
    (from, from + 4 * 3600)
}

#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    hash: u64,
    points: usize,
    verdicts: Vec<String>,
}

fn fingerprint(sys: &mut System, from: i64, to: i64) -> Fingerprint {
    let mut verdicts = Vec::new();
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, to);
        verdicts.extend(sys.vps[vi].loss.targets.iter().map(|t| t.far_ip.to_string()));
    }
    verdicts.sort();
    verdicts.dedup();
    Fingerprint { hash: sys.store.content_hash(), points: sys.store.point_count(), verdicts }
}

struct Fixture {
    template: PathBuf,
    reference: Fingerprint,
}

/// Finished durable run (4 generations written, 3 kept + `checkpoint.json`)
/// plus the uninterrupted in-memory reference fingerprint.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (from, to) = window();
        let mut ref_sys = System::new(toy(SEED), SystemConfig::default());
        ref_sys.run_packet_mode(from, to);
        let reference = fingerprint(&mut ref_sys, from, to);
        drop(ref_sys);

        let template = std::env::temp_dir()
            .join(format!("manic-disk-faults-template-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&template);
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::EveryN(8),
            checkpoint_every_rounds: 12,
            ..DurabilityConfig::default()
        };
        let mut sys = System::new(toy(SEED), SystemConfig::default());
        let mut d = Durable::create(&sys, "toy", SEED, &template, from, to, cfg)
            .expect("create durable");
        d.run_window(&mut sys, to, &|| false).expect("run window");
        d.finalize(&sys, to).expect("finalize");
        Fixture { template, reference }
    })
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for e in std::fs::read_dir(src).expect("read template").flatten() {
        let p = e.path();
        let d = dst.join(e.file_name());
        if p.is_dir() {
            copy_dir(&p, &d);
        } else {
            std::fs::copy(&p, &d).expect("copy file");
        }
    }
}

fn scratch_copy(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("manic-disk-faults-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_dir(&fixture().template, &dir);
    dir
}

/// Every regular file in the data dir, sorted for deterministic picks.
fn data_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for e in std::fs::read_dir(dir).expect("read data dir").flatten() {
        let p = e.path();
        if p.is_dir() {
            files.extend(data_files(&p));
        } else {
            files.push(p);
        }
    }
    files.sort();
    files
}

fn clean_cfg() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::EveryN(64),
        checkpoint_every_rounds: 100_000,
        ..DurabilityConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One flipped bit anywhere in the surviving files — meta, snapshot,
    /// WAL — is either harmless (recovery still reproduces the reference
    /// exactly) or flagged in [`manic_core::StorageFindings`]; it is never
    /// a panic and never silent divergence.
    #[test]
    fn checkpoint_bit_flip_recovers_or_flags(pick in 0usize..4096, flip in 0usize..1_000_000) {
        let (from, to) = window();
        let reference = fixture().reference.clone();
        let dir = scratch_copy("flip");

        let files: Vec<PathBuf> = data_files(&dir)
            .into_iter()
            .filter(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .collect();
        prop_assert!(!files.is_empty(), "template has no non-empty files");
        let target = &files[pick % files.len()];
        let mut bytes = std::fs::read(target).expect("read target");
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(target, &bytes).expect("write flipped");

        let report = recover_report_with(&dir, manic_vfs::real()).expect("one flip is recoverable");
        let (mut sys, mut d, info) = resume(&dir, Some(clean_cfg())).expect("resume");
        prop_assert_eq!(
            report.storage.clean(), info.storage.clean(),
            "report and resume must agree on whether damage was found"
        );
        d.run_window(&mut sys, to, &|| false).expect("re-run to window end");
        let fp = fingerprint(&mut sys, from, to);
        if info.storage.clean() {
            prop_assert_eq!(
                fp, reference,
                "clean recovery must reproduce the reference exactly (flipped {:?} bit {})",
                target, bit
            );
        } else {
            // Flagged damage may cost data but never invents verdicts.
            prop_assert!(
                fp.verdicts.iter().all(|v| reference.verdicts.contains(v)),
                "verdicts {:?} outside reference {:?}", fp.verdicts, reference.verdicts
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// ENOSPC in the middle of WAL group commits: the run keeps going (raw
/// samples are shed, the in-memory system is unaffected), and a crash
/// during the degraded span recovers with at most raw-sample loss —
/// verdicts are never invented.
#[test]
fn enospc_mid_group_commit_sheds_and_recovers() {
    let (from, to) = window();
    let reference = fixture().reference.clone();
    let dir = std::env::temp_dir()
        .join(format!("manic-disk-faults-enospc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Drive the run in chunks with a group commit after each, like the CLI's
    // periodic checkpoints would. The commit barriers matter twice over:
    // appends are staged until a barrier pushes them through the writer
    // thread, and the op-counter reads must not race that thread.
    const CHUNKS: i64 = 8;
    let chunk_ends: Vec<i64> = (1..=CHUNKS).map(|i| from + (to - from) * i / CHUNKS).collect();
    let cfg_with = |vfs: Arc<dyn manic_vfs::Vfs>| DurabilityConfig {
        fsync: FsyncPolicy::EveryN(8),
        checkpoint_every_rounds: 100_000,
        vfs,
        ..DurabilityConfig::default()
    };

    // Calibrate the fault window: run the identical chunked schedule once
    // against a clean FaultVfs and read the write-op counter at create time
    // and after the final drain. With no periodic checkpoints every op in
    // between is a WAL write, so the middle third of that span hits
    // mid-run group commits while leaving commits on both sides intact.
    let (wal_lo, wal_hi) = {
        let cal = FaultVfs::new(DiskFaultPlan::default());
        let cal_dir = dir.with_extension("cal");
        let _ = std::fs::remove_dir_all(&cal_dir);
        let mut sys = System::new(toy(SEED), SystemConfig::default());
        let mut d = Durable::create(&sys, "toy", SEED, &cal_dir, from, to, cfg_with(Arc::new(cal.clone())))
            .expect("calibration create");
        let (create_ops, _) = cal.ops();
        for &t in &chunk_ends {
            d.run_window(&mut sys, t, &|| false).expect("calibration run");
            d.wal().flush_and_sync().expect("calibration commit");
        }
        let (end_ops, _) = cal.ops();
        drop(d);
        let _ = std::fs::remove_dir_all(&cal_dir);
        assert!(end_ops > create_ops, "run produced no WAL writes to calibrate against");
        let span = end_ops - create_ops;
        (create_ops + span / 3, create_ops + 2 * span.div_ceil(3))
    };

    // Device full for the middle third of the WAL write ops: early commits
    // land durably, commits inside the window fail (the log sheds and the
    // run keeps going), and once the op counter escapes the window later
    // commits succeed again. No periodic checkpoints, so shed records
    // cannot be recovered from a snapshot.
    let fvfs = FaultVfs::new(DiskFaultPlan::new(vec![DiskFaultEvent::window(
        DiskFaultKind::Enospc,
        wal_lo,
        wal_hi,
    )
    .scoped("wal")]));
    let mut sys = System::new(toy(SEED), SystemConfig::default());
    let mut d = Durable::create(&sys, "toy", SEED, &dir, from, to, cfg_with(Arc::new(fvfs.clone())))
        .expect("create durable");
    let mut commits_ok = 0u32;
    let mut commits_failed = 0u32;
    for &t in &chunk_ends {
        d.run_window(&mut sys, t, &|| false)
            .expect("ENOSPC mid-group-commit must not kill the run");
        // A commit hitting the full device is allowed to fail — that is the
        // degradation under test — but it must fail as an error, not a panic.
        match d.wal().flush_and_sync() {
            Ok(()) => commits_ok += 1,
            Err(_) => commits_failed += 1,
        }
    }
    assert!(fvfs.stats().enospc > 0, "the fault window never fired — test is vacuous");
    assert!(commits_failed > 0, "no commit overlapped the full-device span — test is vacuous");
    assert!(commits_ok > 0, "every commit failed — the window swallowed the whole run");

    // The live system never lost anything: shedding is a persistence-side
    // degradation only.
    let live = fingerprint(&mut sys, from, to);
    assert_eq!(live, reference, "in-memory state diverged under ENOSPC");

    // Crash inside/after the degraded span: recovery may miss shed raw
    // samples but must not panic, must not invent verdicts, and must not
    // exceed the reference point count.
    fvfs.power_cut();
    drop(d);
    drop(sys);
    let (mut sys2, mut d2, _info) = resume(&dir, Some(clean_cfg())).expect("resume after ENOSPC");
    d2.run_window(&mut sys2, to, &|| false).expect("finish window");
    let fp = fingerprint(&mut sys2, from, to);
    assert!(fp.points <= reference.points, "recovery invented points");
    assert!(
        fp.verdicts.iter().all(|v| reference.verdicts.contains(v)),
        "verdicts {:?} outside reference {:?}",
        fp.verdicts,
        reference.verdicts
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Destroying the newest generation's meta (both `checkpoint.json` and the
/// numbered copy) falls back a full generation and deterministically
/// re-executes to the reference — through the same public API the CLI uses.
#[test]
fn generation_fallback_reproduces_reference() {
    let (from, to) = window();
    let reference = fixture().reference.clone();
    let dir = scratch_copy("fallback");

    let newest = data_files(&dir)
        .into_iter()
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with("checkpoint-"))
                .unwrap_or(false)
        })
        .max()
        .expect("numbered generations exist");
    std::fs::write(&newest, b"garbage, not a checkpoint").expect("corrupt newest meta");
    std::fs::write(dir.join("checkpoint.json"), b"{\"also\":\"garbage\"").expect("corrupt copy");

    let report = recover_report_with(&dir, manic_vfs::real()).expect("older generation usable");
    assert!(report.storage.bad_metas >= 2, "both damaged metas reported");
    let (mut sys, mut d, info) = resume(&dir, Some(clean_cfg())).expect("resume falls back");
    assert!(!info.storage.clean());
    assert!(info.storage.bad_metas >= 2);
    d.run_window(&mut sys, to, &|| false).expect("re-run to window end");
    let fp = fingerprint(&mut sys, from, to);
    assert_eq!(fp, reference, "fallback + deterministic re-execution reproduces the reference");
    std::fs::remove_dir_all(&dir).ok();
}
