//! Equivalence of the fluid fast path and packet-mode probing.
//!
//! DESIGN.md documents the fluid path as "an aggregation shortcut —
//! identical distributional observables at 100x speed". This test holds it
//! to that: the min-per-15-minute TSLP series synthesized by the fast path
//! must track the series the packet-mode prober actually records, bin by
//! bin, on both a congested and an uncongested link.

use manic_core::{System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date, SECS_PER_DAY};
use manic_probing::tslp::{series_key, End};
use manic_scenario::worlds::{toy, toy_asns};
use manic_tsdb::Aggregate;

#[test]
fn fluid_series_tracks_packet_series() {
    let mut sys = System::new(toy(5), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 6, 6));
    let to = from + SECS_PER_DAY;
    sys.run_bdrmap_cycle(0, from);

    // Packet mode: one day of real probing into the tsdb.
    {
        let world = &sys.world;
        let vp = &mut sys.vps[0];
        let mut t = from;
        while t < to {
            vp.tslp.probe_round(&world.net, &mut vp.sim, t, &sys.store);
            t += 300;
        }
    }

    // Fluid mode: the synthesized counterpart.
    let vp = &sys.vps[0];
    let fluid = vp.tslp.synthesize_window(&sys.world.net, from, to, 900);

    let mut compared_links = 0;
    for series in &fluid {
        let task = vp
            .tslp
            .tasks
            .iter()
            .find(|t| t.far_ip == series.far_ip)
            .expect("task exists");
        for (end, fluid_bins) in [(End::Near, &series.near), (End::Far, &series.far)] {
            let key = series_key(&vp.handle.name, task, end);
            let packet_bins = sys.store.downsample_dense(&key, from, to, 900, Aggregate::Min);
            assert_eq!(packet_bins.len(), fluid_bins.len());
            let mut n = 0;
            let mut err = 0.0;
            for (p, f) in packet_bins.iter().zip(fluid_bins) {
                if let (Some(p), Some(f)) = (p, f) {
                    n += 1;
                    err += (p - f).abs();
                }
            }
            assert!(n > 80, "most bins present on both sides ({n}/96)");
            let mae = err / n as f64;
            assert!(
                mae < 2.0,
                "fast path must track packet mode: MAE {mae:.2} ms on {} {}",
                series.far_ip,
                end.tag()
            );
        }
        compared_links += 1;
    }
    assert!(compared_links >= 4, "all toy links compared");
}

#[test]
fn fluid_and_packet_agree_on_congestion_signal() {
    // The distributional property inference cares about: elevated evening
    // far-end RTT on the congested link, in both modes.
    let mut sys = System::new(toy(5), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 6, 6));
    let to = from + SECS_PER_DAY;
    sys.run_bdrmap_cycle(0, from);
    {
        let world = &sys.world;
        let vp = &mut sys.vps[0];
        let mut t = from;
        while t < to {
            vp.tslp.probe_round(&world.net, &mut vp.sim, t, &sys.store);
            t += 300;
        }
    }
    let vp = &sys.vps[0];
    let gt = &sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
    let far = gt.far_addr_from(toy_asns::ACME);
    let task = vp.tslp.tasks.iter().find(|t| t.far_ip == far).unwrap();
    let key = series_key(&vp.handle.name, task, End::Far);
    // Peak = 01:00-03:00 UTC (evening in NYC); trough = 13:00-15:00 UTC.
    let max_in = |lo: i64, hi: i64| {
        sys.store
            .downsample(&key, from + lo * 3600, from + hi * 3600, 900, Aggregate::Min)
            .iter()
            .map(|p| p.v)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let packet_peak = max_in(1, 3);
    let packet_trough = max_in(13, 15);
    assert!(
        packet_peak > packet_trough + 20.0,
        "packet mode sees the evening queue: {packet_peak} vs {packet_trough}"
    );
    let fluid = vp.tslp.synthesize_window(&sys.world.net, from, to, 900);
    let series = fluid.iter().find(|s| s.far_ip == far).unwrap();
    let fl_peak = series.far[4..12].iter().flatten().cloned().fold(f64::NEG_INFINITY, f64::max);
    let fl_trough = series.far[52..60].iter().flatten().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        fl_peak > fl_trough + 20.0,
        "fluid mode sees the same queue: {fl_peak} vs {fl_trough}"
    );
}
