//! Crash/restart integration test for the serving layer: a durable
//! measurement run is killed mid-window (its `Durable` handle dropped with
//! an unacknowledged WAL tail past the last checkpoint), resumed from the
//! same `--data-dir`, run to the end of the window, and served again. The
//! API responses a dashboard consumes — `/api/links` and the per-link
//! timeseries — must be byte-identical to an uninterrupted in-memory run,
//! because resume re-executes the discarded tail deterministically.

use manic_core::{resume, Durable, DurabilityConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use manic_serve::{ServeConfig, ServeState, Server, SnapshotHub};
use manic_tsdb::wal::FsyncPolicy;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

/// One request over a fresh connection; returns the body, asserting 200.
fn get_body(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    assert_eq!(&head[9..12], "200", "GET {path}: {body}");
    body.to_string()
}

/// Publish a snapshot of `sys` as of `to` and capture every endpoint a
/// dashboard would read for the link list plus one link's timeseries.
fn serve_and_capture(sys: &System, from: i64, to: i64) -> (String, String, String) {
    let hub = Arc::new(SnapshotHub::new());
    hub.publish_from(sys, to, to - from);
    let far = hub.current().links.first().map(|l| l.far_ip.to_string()).expect("links");
    let cfg = ServeConfig::default();
    let state = Arc::new(ServeState::new(Arc::clone(&hub), Arc::clone(&sys.store), &cfg));
    let server = Server::start("127.0.0.1:0", state, &cfg).expect("bind");
    let addr = server.local_addr();
    let links = get_body(addr, "/api/links");
    let series = get_body(addr, &format!("/api/link/{far}/timeseries?bin=300&agg=min"));
    (links, series, far)
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("manic-serve-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn served_state_survives_kill_and_resume() {
    let from = date_to_sim(Date::new(2017, 3, 1));
    let to = from + 6 * 3600;
    // Kill point between checkpoints: 52 rounds in, last checkpoint at 48.
    let mid = from + 4 * 3600 + 20 * 60;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(64),
        checkpoint_every_rounds: 12,
        ..DurabilityConfig::default()
    };

    // Reference: the same window run uninterrupted, entirely in memory.
    let mut ref_sys = System::new(toy(42), SystemConfig::default());
    ref_sys.run_packet_mode(from, to);
    for vi in 0..ref_sys.vps.len() {
        ref_sys.arm_reactive_loss(vi, from, to);
    }
    let (ref_links, ref_series, ref_far) = serve_and_capture(&ref_sys, from, to);
    drop(ref_sys);

    // Durable run, "killed" mid-window: the handle is dropped without a
    // final checkpoint, leaving rounds 49–52 only in the WAL tail.
    let dir = tmpdir("world");
    let mut sys = System::new(toy(42), SystemConfig::default());
    let mut durable =
        Durable::create(&sys, "toy", 42, &dir, from, to, cfg.clone()).expect("create durable");
    durable.run_window(&mut sys, mid, &|| false).expect("run to kill point");
    drop(durable);
    drop(sys);

    // Restart from disk: the unacknowledged tail is discarded and
    // re-executed, then the window runs to its end.
    let (mut sys2, mut durable2, info) = resume(&dir, Some(cfg)).expect("resume");
    assert!(info.store_hash_ok, "restored snapshot hash verified");
    assert!(info.tail_discarded > 0, "the kill left an unacknowledged WAL tail");
    assert_eq!(info.rounds, 48, "resume starts at the last checkpoint");
    durable2.run_window(&mut sys2, to, &|| false).expect("run to window end");
    durable2.finalize(&sys2, to).expect("final checkpoint");
    for vi in 0..sys2.vps.len() {
        sys2.arm_reactive_loss(vi, from, to);
    }

    let (res_links, res_series, res_far) = serve_and_capture(&sys2, from, to);
    assert_eq!(res_far, ref_far, "snapshot lists the same first link");
    assert_eq!(res_links, ref_links, "/api/links identical after kill+resume");
    assert_eq!(res_series, ref_series, "timeseries identical after kill+resume");

    std::fs::remove_dir_all(&dir).unwrap();
}
