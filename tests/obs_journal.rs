//! Journal and audit-trail integration: the control-loop behaviors the
//! fault-recovery suite asserts through tsdb annotations must also be
//! *observable* — health transitions as journal events at the sim times
//! they happened, and congestion verdicts explainable from the audit trail.
//!
//! Tests here only append to the process-wide journal/audit singletons and
//! assert "contains" (never exact counts), so they are safe to run in
//! parallel within this binary.

use manic_core::{System, SystemConfig};
use manic_netsim::fault::{FaultEvent, FaultKind, FaultScope};
use manic_netsim::time::{datetime_to_sim, Date};
use manic_obs::Value;
use manic_probing::tslp::ROUND_SECS;
use manic_scenario::worlds::{toy, toy_asns};

fn field_str<'a>(ev: &'a manic_obs::Event, key: &str) -> &'a str {
    match ev.field(key) {
        Some(Value::Str(s)) => s.as_str(),
        other => panic!("field {key} missing or not a string: {other:?}"),
    }
}

/// Interface silence walks the task's health machine down the ladder; every
/// transition must surface as a `health_transition` journal event stamped
/// with the sim time of the round that observed it.
#[test]
fn health_transitions_appear_as_journal_events_at_sim_times() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    sys.cfg.reactive_mismatch_rounds = 0;
    let from = datetime_to_sim(Date::new(2016, 6, 7), 6, 0, 0);
    sys.run_bdrmap_cycle(0, from);
    let gt = &sys.world.links_between(toy_asns::ACME, toy_asns::VIDCO)[0];
    let far_ip = gt.far_addr_from(toy_asns::ACME);
    let ifc = sys.world.net.topo.iface_by_addr(far_ip).expect("far iface");
    sys.world.net.fault.push(FaultEvent::window(
        FaultKind::IfaceSilence,
        FaultScope::Iface(ifc.id),
        from,
        from + 8 * 3600,
    ));
    let to = from + 6 * 3600;
    sys.run_packet_mode(from, to);

    let far = far_ip.to_string();
    let transitions: Vec<manic_obs::Event> = manic_obs::journal()
        .snapshot()
        .into_iter()
        .filter(|e| e.name == "health_transition" && field_str(e, "far") == far)
        .collect();
    assert!(
        !transitions.is_empty(),
        "no health_transition events for the silenced link {far}"
    );
    for ev in &transitions {
        assert!(
            ev.t >= from && ev.t < to,
            "event time {} outside the run window [{from}, {to})",
            ev.t
        );
        assert_eq!(
            (ev.t - from) % ROUND_SECS,
            0,
            "transitions are observed on the probing-round grid"
        );
        assert_eq!(field_str(ev, "vp"), "acme-nyc");
    }
    // The ladder is walked in order: degraded before quarantined.
    let order: Vec<&str> = transitions.iter().map(|e| field_str(e, "to")).collect();
    let degraded = order.iter().position(|s| *s == "degraded");
    let quarantined = order.iter().position(|s| *s == "quarantined");
    assert!(degraded.is_some(), "expected a degraded transition, got {order:?}");
    assert!(quarantined.is_some(), "silence outlasts quarantine: {order:?}");
    assert!(degraded < quarantined, "out-of-order transitions: {order:?}");

    // Health-transition counters agree that transitions happened.
    assert!(
        manic_obs::registry()
            .sum_counters_with_prefix("manic_core_health_transitions")
            > 0
    );
}

/// Every congested verdict must be explainable after the fact: the audit
/// trail for the congested link carries the level-shift evidence the
/// reactive trigger acted on.
#[test]
fn congested_verdict_is_explainable_from_the_audit_trail() {
    let mut sys = System::new(toy(1), SystemConfig::default());
    // Evening window with the scripted 4h congestion episode.
    let from = datetime_to_sim(Date::new(2016, 6, 7), 22, 0, 0);
    let to = from + 8 * 3600;
    sys.run_packet_mode(from, to);
    let n = sys.arm_reactive_loss(0, from, to);
    assert!(n >= 1, "congested peering should arm loss probing");

    let gt = &sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
    let far = gt.far_addr_from(toy_asns::ACME).to_string();
    let records = manic_obs::audit().explain(&far);
    let congested: Vec<_> = records
        .iter()
        .filter(|r| r.detector == "levelshift" && r.congested)
        .collect();
    assert!(
        !congested.is_empty(),
        "no congested levelshift verdict for {far}; links with records: {:?}",
        manic_obs::audit().links()
    );
    for rec in congested {
        assert!(rec.t >= from && rec.t <= to);
        let shift = rec
            .evidence
            .iter()
            .find(|e| e.kind == "level_shift")
            .expect("congested verdict without level-shift evidence");
        // The episode lies inside the analysis window and shows an actual
        // elevation over baseline.
        let num = |e: &manic_obs::Evidence, k: &str| match e.field(k) {
            Some(Value::I64(v)) => *v as f64,
            Some(Value::U64(v)) => *v as f64,
            Some(Value::F64(v)) => *v,
            other => panic!("field {k}: {other:?}"),
        };
        assert!(num(shift, "start_t") >= from as f64);
        assert!(num(shift, "end_t") <= to as f64);
        assert!(
            num(shift, "level_ms") > num(shift, "baseline_ms"),
            "level-shift evidence must show elevation"
        );
        // Masked-bin accounting is always present, even when zero.
        assert!(rec.evidence.iter().any(|e| e.kind == "masked_bins"));
    }
}
