//! End-to-end pipeline tests on the toy world: discovery → probing →
//! inference → validation, checked against the scripted ground truth.

use manic_analysis::study::is_congested_at;
use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, local_hour, Date, SECS_PER_DAY};
use manic_probing::loss::LossTarget;
use manic_probing::tslp::End;
use manic_probing::VpHandle;
use manic_scenario::worlds::{toy, toy_asns};
use manic_stats::ttest::{two_sample_t, Tails};
use manic_valid::lossval::{classify_month_links, LossValInput, Table1Class};
use manic_valid::ndt::{run_ndt, NdtServer};
use manic_valid::tcpmodel::TcpModelConfig;

fn study(days: i64) -> (System, Vec<manic_core::LinkDays>) {
    let mut sys = System::new(toy(9), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 4, 1));
    let cfg = LongitudinalConfig::new(from, from + days * SECS_PER_DAY);
    let links = run_longitudinal(&mut sys, &cfg);
    (sys, links)
}

#[test]
fn inference_matches_scripted_schedule() {
    let (sys, links) = study(60);
    for link in &links {
        let congested = link.congested_days(0.04);
        if link.neighbor_as == toy_asns::CDNCO {
            assert!(congested >= 45, "cdnco congested most days: {congested}");
            // ~4 scripted hours/day => day congestion around 14-25%.
            let mean_pct: f64 = link
                .day_masks
                .keys()
                .map(|&d| link.day_pct(d))
                .sum::<f64>()
                / link.day_masks.len().max(1) as f64;
            assert!(
                (0.10..0.35).contains(&mean_pct),
                "daily congestion fraction {mean_pct}"
            );
        } else {
            assert_eq!(
                congested,
                0,
                "{} must stay clean",
                sys.world.graph.info(link.neighbor_as).name
            );
        }
    }
}

#[test]
fn inferred_windows_sit_in_local_evening() {
    let (_sys, links) = study(60);
    let link = links
        .iter()
        .find(|l| l.neighbor_as == toy_asns::CDNCO && !l.day_masks.is_empty())
        .expect("congested link");
    // Every congested 15-minute interval should fall between 18:00 and
    // 01:00 NYC local time (the scripted 9pm peak +/- the window).
    for (&day, &mask) in &link.day_masks {
        for iv in 0..96 {
            if mask & (1u128 << iv) == 0 {
                continue;
            }
            let t = day * SECS_PER_DAY + iv as i64 * 900;
            let lh = local_hour(t, -5);
            assert!(
                !(1.5..17.0).contains(&lh),
                "congested interval at odd local hour {lh:.2}"
            );
        }
    }
}

#[test]
fn loss_validation_passes_both_tests_on_clean_congestion() {
    let (sys, links) = study(60);
    let link = links
        .iter()
        .find(|l| l.neighbor_as == toy_asns::CDNCO && !l.day_masks.is_empty())
        .expect("congested link");
    let vp = &sys.vps[sys.vp_index(&link.vps[0])];
    let task = vp.tslp.tasks.iter().find(|t| t.far_ip == link.far_ip).expect("task");
    let dest = task.dests[0];
    let handle = VpHandle {
        name: vp.handle.name.clone(),
        router: vp.handle.router,
        addr: vp.handle.addr,
    };
    let mut prober = manic_probing::LossProber::new(handle, 0);
    prober.set_targets(vec![LossTarget {
        near_ip: task.near_ip,
        far_ip: task.far_ip,
        dst: dest.dst,
        near_ttl: dest.near_ttl,
        far_ttl: dest.far_ttl,
        flow_id: task.flow_id,
    }]);
    let from = date_to_sim(Date::new(2016, 4, 1));
    let windows = prober.synthesize_window(&sys.world.net, from, from + 30 * SECS_PER_DAY);
    let mut far_c = (0u64, 0u64);
    let mut far_u = (0u64, 0u64);
    let mut near_c = (0u64, 0u64);
    for (_, samples) in windows {
        for s in samples {
            let congested = is_congested_at(link, s.window_start + 150);
            let slot = match (s.end, congested) {
                (End::Far, true) => &mut far_c,
                (End::Far, false) => &mut far_u,
                (End::Near, true) => &mut near_c,
                (End::Near, false) => continue,
            };
            slot.0 += s.lost as u64;
            slot.1 += s.sent as u64;
        }
    }
    let input = LossValInput {
        vp: link.vps[0].clone(),
        link_label: link.far_ip.to_string(),
        month: 3,
        significantly_congested: true,
        far_congested: far_c,
        far_uncongested: far_u,
        near_congested: near_c,
        near_uncongested: (0, 1000),
    };
    let t1 = classify_month_links(&[input], 0.05);
    assert_eq!(t1.significant, 1);
    assert_eq!(t1.rows[0].3, Table1Class::FarHigherAndLocalized);
}

#[test]
fn ndt_throughput_drops_significantly_on_congested_link() {
    let (sys, links) = study(60);
    let link = links
        .iter()
        .find(|l| l.neighbor_as == toy_asns::CDNCO && !l.day_masks.is_empty())
        .expect("congested link");
    let world = &sys.world;
    let vpr = world.vp(&link.vps[0]);
    let vp = VpHandle { name: vpr.name.clone(), router: vpr.router, addr: vpr.addr };
    let server = NdtServer {
        name: "cdnco".into(),
        asn: toy_asns::CDNCO,
        addr: world.host_addr(toy_asns::CDNCO, 7),
        router: world.host_routers[&toy_asns::CDNCO],
    };
    let from = date_to_sim(Date::new(2016, 4, 10));
    let mut cong = Vec::new();
    let mut uncong = Vec::new();
    for k in 0..(14 * 24) {
        let t = from + k * 3600;
        let Some(r) = run_ndt(&world.net, &vp, &server, t, 3, &TcpModelConfig::default()) else {
            continue;
        };
        if is_congested_at(link, t) {
            cong.push(r.download_mbps);
        } else {
            uncong.push(r.download_mbps);
        }
    }
    assert!(cong.len() > 20 && uncong.len() > 100);
    let t = two_sample_t(&uncong, &cong, Tails::Greater).expect("test computes");
    assert!(t.significant(0.001), "p = {}", t.p);
}

#[test]
fn inference_robust_to_heavy_probe_loss() {
    // Fault injection in the spirit of smoltcp's --drop-chance examples:
    // an extra 3% per-crossing drop probability (≈ one in five probes lost
    // end to end) must not change any classification — TSLP's redundancy is
    // 3-9 samples per 15-minute bin and the min-filter needs only one.
    let mut sys = System::new(toy(9), SystemConfig { trace_attempts: 3, ..Default::default() });
    sys.world.net.fault.push(manic_netsim::FaultEvent::always(
        manic_netsim::FaultKind::ExtraLoss { prob: 0.03 },
        manic_netsim::FaultScope::Global,
    ));
    let from = date_to_sim(Date::new(2016, 4, 1));
    let cfg = LongitudinalConfig::new(from, from + 60 * SECS_PER_DAY);
    let links = run_longitudinal(&mut sys, &cfg);
    let hot: usize = links
        .iter()
        .filter(|l| l.neighbor_as == toy_asns::CDNCO)
        .map(|l| l.congested_days(0.04))
        .sum();
    let cold: usize = links
        .iter()
        .filter(|l| l.neighbor_as != toy_asns::CDNCO)
        .map(|l| l.congested_days(0.04))
        .sum();
    assert!(hot >= 40, "still detected under loss: {hot}");
    assert_eq!(cold, 0, "no false positives under loss");
}

#[test]
fn vp_churn_preserves_link_coverage() {
    // §3: VP hosting churns (86 VPs over the study, 63 by Dec 2017). When a
    // VP retires, links it shared with surviving VPs stay classified; links
    // only it observed drop out of the current view while the merge keeps
    // every surviving observation.
    let mut sys = System::new(toy(9), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 4, 1));
    let cfg = LongitudinalConfig::new(from, from + 60 * SECS_PER_DAY);
    let full = run_longitudinal(&mut sys, &cfg);
    let hot_full: usize = full
        .iter()
        .filter(|l| l.neighbor_as == toy_asns::CDNCO)
        .map(|l| l.congested_days(0.04))
        .sum();
    assert!(hot_full >= 45);

    // Retire the chi VP; the nyc VP still observes the shared peering.
    let mut sys2 = System::new(toy(9), SystemConfig::default());
    let chi = sys2.vp_index("acme-chi");
    sys2.retire_vp(chi);
    assert_eq!(sys2.active_vps(), 1);
    let after = run_longitudinal(&mut sys2, &cfg);
    let hot_after: usize = after
        .iter()
        .filter(|l| l.neighbor_as == toy_asns::CDNCO)
        .map(|l| l.congested_days(0.04))
        .sum();
    assert!(hot_after >= 45, "surviving VP keeps the link classified: {hot_after}");
    // Every remaining record is attributed to the surviving VP only.
    assert!(after.iter().all(|l| l.vps.iter().all(|v| v == "acme-nyc")));
}
